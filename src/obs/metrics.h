// Metric primitives of the observability layer (src/obs): a thread-safe
// registry of named counters, gauges and histograms.
//
// Design constraints (see DESIGN.md "Observability"):
//  * the hot path is one relaxed atomic add on a pre-resolved pointer —
//    callers resolve Counter*/Histogram* handles once (at attach time) and
//    never touch the registry map again,
//  * deterministic quantities only: counters mirror the session/journal
//    ledgers (questions, rounds, retries, ...) and are bit-identical
//    across runs of the same configuration; wall-clock timing lives in the
//    trace collector (obs/trace.h), never in a counter,
//  * exports are stable: samples are emitted sorted by name, so two runs
//    of the same configuration produce byte-identical counter dumps.
//
// The registry hands out stable pointers (node-based map + unique_ptr), so
// handles stay valid for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace crowdsky::obs {

/// Monotonically increasing integer metric. All operations are relaxed
/// atomics: counters never order other memory.
class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins floating-point metric (scraped quantities: cost in
/// dollars, pool high-water marks, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two bucketed histogram of non-negative integers (round sizes,
/// span durations in microseconds). Bucket i counts observations with
/// value <= BucketBound(i); the last bucket is unbounded (+Inf).
class Histogram {
 public:
  /// le bounds 1, 2, 4, ..., 2^19, +Inf.
  static constexpr int kBuckets = 21;

  void Observe(int64_t value) {
    if (value < 0) value = 0;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Observations landing in bucket `i` (not cumulative).
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket `i`; the last bucket has no bound.
  static int64_t BucketBound(int i) { return int64_t{1} << i; }
  static int BucketIndex(int64_t value) {
    for (int i = 0; i < kBuckets - 1; ++i) {
      if (value <= BucketBound(i)) return i;
    }
    return kBuckets - 1;
  }

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// \brief Thread-safe find-or-create registry of named metrics.
///
/// Metric names are dotted lowercase ("crowdsky.rounds", "pool.steals").
/// The registry owns its metrics; returned pointers stay valid for the
/// registry's lifetime. A name may carry exactly one metric kind —
/// re-registering it as a different kind is a programming error.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  CROWDSKY_DISALLOW_COPY(MetricRegistry);

  Counter* FindOrCreateCounter(std::string_view name);
  Gauge* FindOrCreateGauge(std::string_view name);
  Histogram* FindOrCreateHistogram(std::string_view name);

  /// The counter's current value, or 0 when no such counter exists.
  int64_t CounterValue(std::string_view name) const;
  /// True iff a counter with this exact name exists.
  bool HasCounter(std::string_view name) const;

  /// All counters as (name, value), sorted by name. Histograms are
  /// flattened into "<name>_count" / "<name>_sum" entries so callers see
  /// one uniform deterministic integer surface.
  std::vector<std::pair<std::string, int64_t>> CounterSamples() const;
  /// All gauges as (name, value), sorted by name.
  std::vector<std::pair<std::string, double>> GaugeSamples() const;

  /// Prometheus text exposition (one "# TYPE" line per metric, names
  /// sanitized to [a-zA-Z0-9_], histograms with cumulative le buckets).
  std::string PrometheusText() const;

 private:
  /// Guards the maps, not the metric values — handed-out Counter*/Gauge*/
  /// Histogram* pointers are updated lock-free through their own atomics.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CROWDSKY_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CROWDSKY_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CROWDSKY_GUARDED_BY(mutex_);
};

/// Writes PrometheusText() to `path` (atomic enough for scrape files:
/// plain truncate + write).
Status WritePrometheusText(const std::string& path,
                           const MetricRegistry& registry);

/// No-op-on-null increment helpers: instrumented code holds Counter*
/// handles that are null when observability is disabled, so the disabled
/// hot path is a single predictable branch.
inline void Add(Counter* counter, int64_t delta) {
  if (counter != nullptr) counter->Add(delta);
}
inline void Observe(Histogram* histogram, int64_t value) {
  if (histogram != nullptr) histogram->Observe(value);
}

}  // namespace crowdsky::obs
