#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <utility>

namespace crowdsky::obs {
namespace {

// The process-unique id fountain is the whole point; it has no destructor
// and no ordering hazards (plain relaxed atomic).
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables): see above
std::atomic<uint64_t> g_next_collector_id{1};

/// Per-thread cache of (collector id -> buffer). Collector ids are
/// process-unique and never reused, so an entry for a destroyed collector
/// is simply never looked up again (it costs a few bytes, bounded by the
/// number of collectors this thread ever recorded into).
struct TlsEntry {
  uint64_t id;
  void* buffer;
};
// Thread-local by design — the per-thread cache is what makes recording
// lock-free; entries are only touched by their owning thread.
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables): see above
thread_local std::vector<TlsEntry> tls_buffers;

}  // namespace

TraceCollector::TraceCollector()
    : id_(g_next_collector_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceCollector::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceCollector::ThreadBuffer* TraceCollector::LocalBuffer() {
  for (const TlsEntry& entry : tls_buffers) {
    if (entry.id == id_) return static_cast<ThreadBuffer*>(entry.buffer);
  }
  MutexLock lock(mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<uint32_t>(buffers_.size());
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  tls_buffers.push_back({id_, raw});
  return raw;
}

void TraceCollector::Record(std::string name, int64_t start_ns,
                            int64_t end_ns, std::string args_json) {
  ThreadBuffer* buffer = LocalBuffer();
  TraceEvent event;
  event.name = std::move(name);
  event.tid = buffer->tid;
  event.start_ns = start_ns;
  event.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  event.args_json = std::move(args_json);
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  MutexLock lock(mutex_);
  std::vector<TraceEvent> out;
  for (const auto& buffer : buffers_) {
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.name < b.name;
            });
  return out;
}

int64_t TraceCollector::event_count() const {
  MutexLock lock(mutex_);
  int64_t count = 0;
  for (const auto& buffer : buffers_) {
    count += static_cast<int64_t>(buffer->events.size());
  }
  return count;
}

void TraceSpan::AddArg(const char* key, int64_t value) {
  if (collector_ == nullptr) return;
  if (!args_.empty()) args_ += ", ";
  args_ += "\"";
  args_ += key;
  args_ += "\": " + std::to_string(value);
}

void TraceSpan::End() {
  if (collector_ == nullptr) return;
  collector_->Record(name_, start_ns_, collector_->NowNs(),
                     std::move(args_));
  collector_ = nullptr;
}

std::string ChromeTraceJson(const TraceCollector& collector) {
  const std::vector<TraceEvent> events = collector.Snapshot();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[64];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"";
    for (const char c : e.name) {  // span names are identifiers; escape
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\", \"cat\": \"crowdsky\", \"ph\": \"X\"";
    std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f",
                  static_cast<double>(e.start_ns) / 1000.0);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"pid\": 1, \"tid\": %u",
                  e.tid);
    out += buf;
    out += ", \"args\": {" + e.args_json + "}}";
  }
  out += events.empty() ? "]}\n" : "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path,
                        const TraceCollector& collector) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open trace file '" + path +
                           "' for writing");
  }
  out << ChromeTraceJson(collector);
  out.flush();
  if (!out) {
    return Status::IOError("failed writing trace file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace crowdsky::obs
