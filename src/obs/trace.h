// Tracing side of the observability layer: RAII TraceSpans recording
// steady-clock durations into lock-free per-thread buffers, exported as
// Chrome trace-event JSON (loadable in chrome://tracing or Perfetto).
//
// Granularity (DESIGN.md "Observability"): run → phase → round → RPC.
// The engine opens the "run" span, drivers open "phase.*" spans, and
// CrowdSession records "crowd.round" events and "crowd.ask_*" RPC spans.
// Nesting is expressed purely by timestamp containment on the same
// thread, which is exactly how the Chrome trace viewer reconstructs the
// hierarchy — a span object carries no parent pointer.
//
// Concurrency: each recording thread appends to its own buffer. The only
// lock is taken once per (thread, collector) pair to register the buffer;
// recording itself is a plain vector push_back with no synchronization.
// Snapshot()/event_count() must therefore only run at quiescent points
// (after the instrumented run finished), which is when exports happen.
//
// Everything in this header is wall-clock-derived and therefore
// NON-deterministic. Deterministic observability lives in obs/metrics.h;
// keeping the two apart is what lets the bit-identical determinism tests
// run with tracing enabled counters.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace crowdsky::obs {

/// One completed span, timestamped in nanoseconds since the collector's
/// epoch (its construction time).
struct TraceEvent {
  std::string name;
  uint32_t tid = 0;       ///< collector-local thread index, 0 = first
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  /// Preformatted JSON object body for the event's "args" field, e.g.
  /// "\"questions\": 12". Empty = no args.
  std::string args_json;
};

/// \brief Collects TraceEvents from any number of threads.
class TraceCollector {
 public:
  TraceCollector();
  ~TraceCollector() = default;
  CROWDSKY_DISALLOW_COPY(TraceCollector);

  /// Nanoseconds since this collector's epoch (steady clock).
  int64_t NowNs() const;

  /// Records one completed event on the calling thread's buffer.
  void Record(std::string name, int64_t start_ns, int64_t end_ns,
              std::string args_json = {});

  /// All events recorded so far, merged across threads and sorted by
  /// (start, -duration) so parents precede their children. Quiescent
  /// points only (see file comment).
  std::vector<TraceEvent> Snapshot() const;
  /// Total events recorded. Quiescent points only.
  int64_t event_count() const;

 private:
  struct ThreadBuffer {
    uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  /// The calling thread's buffer, registering it on first use.
  ThreadBuffer* LocalBuffer();

  const uint64_t id_;  ///< process-unique, never reused (tls cache key)
  std::chrono::steady_clock::time_point epoch_;
  /// Guards buffers_ (registration + snapshot). Recording appends through
  /// a thread-local ThreadBuffer* without the lock — safe because only the
  /// owning thread ever touches its buffer's events, and snapshots only
  /// happen at quiescent points (see file comment).
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      CROWDSKY_GUARDED_BY(mutex_);
};

/// \brief RAII span: records [construction, End()/destruction) into a
/// collector. A default-constructed span is a no-op — that is the entire
/// disabled mode (see RunObserver::Span).
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceCollector* collector, const char* name)
      : collector_(collector), name_(name) {
    if (collector_ != nullptr) start_ns_ = collector_->NowNs();
  }
  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      End();
      collector_ = other.collector_;
      name_ = other.name_;
      start_ns_ = other.start_ns_;
      args_ = std::move(other.args_);
      other.collector_ = nullptr;
    }
    return *this;
  }
  CROWDSKY_DISALLOW_COPY(TraceSpan);
  ~TraceSpan() { End(); }

  /// Attaches an integer argument shown in the trace viewer. Must be
  /// called before the span ends; no-op on a disabled span.
  void AddArg(const char* key, int64_t value);

  /// Records the span now (idempotent; the destructor calls it too).
  void End();

 private:
  TraceCollector* collector_ = nullptr;
  const char* name_ = "";
  int64_t start_ns_ = 0;
  std::string args_;
};

/// Serializes a snapshot as Chrome trace-event JSON ("X" complete events,
/// microsecond timestamps, pid 1, one tid per recording thread).
std::string ChromeTraceJson(const TraceCollector& collector);

/// Writes ChromeTraceJson(collector) to `path`.
Status WriteChromeTrace(const std::string& path,
                        const TraceCollector& collector);

}  // namespace crowdsky::obs
