#include "obs/observer.h"

namespace crowdsky::obs {

const char* ObsLevelName(ObsLevel level) {
  switch (level) {
    case ObsLevel::kDisabled:
      return "disabled";
    case ObsLevel::kCounters:
      return "counters";
    case ObsLevel::kFull:
      return "full";
  }
  return "?";
}

}  // namespace crowdsky::obs
