#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace crowdsky::obs {
namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; we map everything else
/// (the dots of our internal names, mostly) to '_'.
std::string Sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out = "_" + out;
  return out;
}

std::string FormatDouble(double v) {
  char buf[40];
  const auto as_int = static_cast<long long>(v);
  if (static_cast<double>(as_int) == v && v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", as_int);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace

Counter* MetricRegistry::FindOrCreateCounter(std::string_view name) {
  MutexLock lock(mutex_);
  CROWDSKY_CHECK_MSG(!gauges_.contains(name) && !histograms_.contains(name),
                     "metric name already registered with another kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::FindOrCreateGauge(std::string_view name) {
  MutexLock lock(mutex_);
  CROWDSKY_CHECK_MSG(!counters_.contains(name) && !histograms_.contains(name),
                     "metric name already registered with another kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::FindOrCreateHistogram(std::string_view name) {
  MutexLock lock(mutex_);
  CROWDSKY_CHECK_MSG(!counters_.contains(name) && !gauges_.contains(name),
                     "metric name already registered with another kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

int64_t MetricRegistry::CounterValue(std::string_view name) const {
  MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

bool MetricRegistry::HasCounter(std::string_view name) const {
  MutexLock lock(mutex_);
  return counters_.contains(name);
}

std::vector<std::pair<std::string, int64_t>> MetricRegistry::CounterSamples()
    const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size() + 2 * histograms_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name + "_count", histogram->count());
    out.emplace_back(name + "_sum", histogram->sum());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, double>> MetricRegistry::GaugeSamples()
    const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;  // map iteration is already name-sorted
}

std::string MetricRegistry::PrometheusText() const {
  MutexLock lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = Sanitize(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = Sanitize(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + FormatDouble(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = Sanitize(name);
    out += "# TYPE " + prom + " histogram\n";
    int64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      cumulative += histogram->bucket(i);
      const std::string le =
          i == Histogram::kBuckets - 1
              ? "+Inf"
              : std::to_string(Histogram::BucketBound(i));
      out += prom + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_sum " + std::to_string(histogram->sum()) + "\n";
    out += prom + "_count " + std::to_string(histogram->count()) + "\n";
  }
  return out;
}

Status WritePrometheusText(const std::string& path,
                           const MetricRegistry& registry) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open metrics file '" + path +
                           "' for writing");
  }
  out << registry.PrometheusText();
  out.flush();
  if (!out) {
    return Status::IOError("failed writing metrics file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace crowdsky::obs
