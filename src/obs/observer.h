// RunObserver: the per-run handle the engine threads through the session
// and the drivers. It bundles the deterministic metric registry with the
// (non-deterministic) trace collector under one observability level:
//
//   kDisabled  no registry access, no spans — instrumented code sees only
//              null Counter* handles and default (no-op) TraceSpans, so
//              the cost is one predictable branch per site,
//   kCounters  counters/gauges/histograms collected, tracing off,
//   kFull      counters plus TraceSpans (Chrome-trace exportable).
//
// Instrumented components resolve their Counter* handles once (at attach
// time) via counter(); the hot path never touches the registry map.
#pragma once

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace crowdsky::obs {

/// How much the observability layer records.
enum class ObsLevel {
  kDisabled = 0,
  kCounters = 1,
  kFull = 2,
};

/// Stable display name ("disabled", "counters", "full").
const char* ObsLevelName(ObsLevel level);

/// \brief One run's observability state: level + metrics + trace.
class RunObserver {
 public:
  explicit RunObserver(ObsLevel level) : level_(level) {}
  CROWDSKY_DISALLOW_COPY(RunObserver);

  ObsLevel level() const { return level_; }
  bool counters_enabled() const { return level_ != ObsLevel::kDisabled; }
  bool tracing_enabled() const { return level_ == ObsLevel::kFull; }

  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  TraceCollector& trace() { return trace_; }
  const TraceCollector& trace() const { return trace_; }

  /// Handle resolution honoring the level: null when counters are off, so
  /// instrumentation sites can use obs::Add / obs::Observe unconditionally.
  Counter* counter(std::string_view name) {
    return counters_enabled() ? metrics_.FindOrCreateCounter(name) : nullptr;
  }
  Histogram* histogram(std::string_view name) {
    return counters_enabled() ? metrics_.FindOrCreateHistogram(name)
                              : nullptr;
  }
  Gauge* gauge(std::string_view name) {
    return counters_enabled() ? metrics_.FindOrCreateGauge(name) : nullptr;
  }

  /// A live span when tracing is on, a no-op span otherwise.
  TraceSpan Span(const char* name) {
    return tracing_enabled() ? TraceSpan(&trace_, name) : TraceSpan();
  }

 private:
  ObsLevel level_;
  MetricRegistry metrics_;
  TraceCollector trace_;
};

/// Span helper for call sites holding a possibly-null observer.
inline TraceSpan SpanIf(RunObserver* observer, const char* name) {
  return observer != nullptr ? observer->Span(name) : TraceSpan();
}

}  // namespace crowdsky::obs
