// DominanceStructure: everything CrowdSky derives from the known
// attributes AK before a single crowd question is asked.
//
//  * dominating sets DS(t) (Definition 5), stored as bitsets, plus sizes,
//  * dominatee bitsets D(u) = { x | u dominates x in AK } — the transpose
//    of DS, used for freq(u,v) (Sections 3.4 and 5) and for the direct-
//    parent computation,
//  * the evaluation order (ascending |DS(t)|, Lemma 3),
//  * skyline layers SL_1..SL_k (Definition 6) and the direct-dominator
//    graph c(t) (transitive reduction of AK dominance) used by ParallelSL.
//
// Construction is O(n^2) pairwise dominance tests with word-parallel set
// operations afterwards, block-partitioned across the global ThreadPool
// (see common/thread_pool.h): each thread fills disjoint row-ranges of the
// dominatee bitsets over the score-sorted order — via the batched SoA
// dominance kernels (skyline/dominance_kernels.h) by default, or the
// historical per-pair Compare under CROWDSKY_KERNEL=legacy — a
// word-partitioned transpose fills the dominator rows, and a merge pass
// derives sizes, layers and direct dominators. Every phase writes disjoint
// state and every backend performs the identical IEEE comparisons, so the
// structure is bit-identical for every CROWDSKY_THREADS value and every
// kernel backend.
#pragma once

#include <vector>

#include "common/bitset.h"
#include "skyline/dominance.h"
#include "skyline/dominance_kernels.h"

namespace crowdsky {

/// \brief Precomputed AK dominance relations for a dataset.
class DominanceStructure {
 public:
  /// Builds from the known-attribute view of a dataset, using the
  /// process-selected kernel backend (CROWDSKY_KERNEL / CPU detection).
  explicit DominanceStructure(const PreferenceMatrix& known);

  /// Same, but with the fill backend pinned explicitly — the hook the
  /// differential tests and benchmarks use to compare backends in one
  /// process regardless of the environment.
  DominanceStructure(const PreferenceMatrix& known, KernelBackend backend);

  int size() const { return n_; }

  /// Bitset form of DS(t): tuples that dominate t in AK.
  const DynamicBitset& dominator_bits(int t) const {
    return dominators_[static_cast<size_t>(t)];
  }
  /// DS(t) materialized as an ascending id list.
  std::vector<int> DominatorsOf(int t) const {
    return dominators_[static_cast<size_t>(t)].ToVector();
  }
  /// |DS(t)|.
  int dominating_set_size(int t) const {
    return ds_size_[static_cast<size_t>(t)];
  }

  /// D(u): bitset of tuples u dominates in AK.
  const DynamicBitset& dominatees(int u) const {
    return dominatees_[static_cast<size_t>(u)];
  }

  /// True iff s dominates t in AK (O(1) bit test).
  bool Dominates(int s, int t) const {
    return dominatees_[static_cast<size_t>(s)].Test(static_cast<size_t>(t));
  }

  /// freq(u,v) = |{ x | u and v both dominate x in AK }| — the question-
  /// importance measure of Sections 3.4 and 5.
  size_t Frequency(int u, int v) const {
    return dominatees_[static_cast<size_t>(u)].IntersectionCount(
        dominatees_[static_cast<size_t>(v)]);
  }

  /// Tuple ids sorted by ascending |DS(t)| (ties by id) — the evaluation
  /// order of Algorithm 1 line 7; a valid topological order of AK
  /// dominance by Lemma 3.
  const std::vector<int>& evaluation_order() const {
    return evaluation_order_;
  }

  /// SKY_AK(R): ids with empty dominating sets, ascending.
  const std::vector<int>& known_skyline() const { return known_skyline_; }

  /// 1-based skyline-layer index of t (Definition 6); layer 1 is SKY_AK(R).
  int layer_of(int t) const { return layer_of_[static_cast<size_t>(t)]; }
  int num_layers() const { return num_layers_; }
  /// Members of layer `l` (1-based), ascending ids.
  const std::vector<int>& layer(int l) const {
    return layers_[static_cast<size_t>(l - 1)];
  }

  /// c(t): direct dominators of t — the transitive reduction of AK
  /// dominance (s in c(t) iff s dominates t with no u strictly between).
  const std::vector<int>& direct_dominators(int t) const {
    return direct_dominators_[static_cast<size_t>(t)];
  }

 private:
  int n_;
  std::vector<DynamicBitset> dominatees_;
  std::vector<DynamicBitset> dominators_;
  std::vector<int> ds_size_;
  std::vector<int> evaluation_order_;
  std::vector<int> known_skyline_;
  std::vector<int> layer_of_;
  int num_layers_ = 0;
  std::vector<std::vector<int>> layers_;
  std::vector<std::vector<int>> direct_dominators_;
};

}  // namespace crowdsky
