// Machine-only skyline algorithms over complete data (Definition 3).
//
// Two classics are provided: block-nested-loop (BNL, Börzsönyi et al.) and
// sort-filter-skyline (SFS, Chomicki et al.). They are used (a) to compute
// SKY_AK(R), the complete-skyline seed of every crowd algorithm, (b) to
// compute ground-truth skylines for accuracy evaluation, and (c) as
// cross-checking references in the property tests.
#pragma once

#include <vector>

#include "skyline/dominance.h"
#include "skyline/dominance_kernels.h"

namespace crowdsky {

/// Block-nested-loop skyline. Returns skyline ids in increasing order.
/// Uses the process-selected dominance-kernel backend (CROWDSKY_KERNEL).
std::vector<int> ComputeSkylineBNL(const PreferenceMatrix& m);

/// Sort-filter-skyline. Returns skyline ids in increasing order.
/// Uses the process-selected dominance-kernel backend (CROWDSKY_KERNEL).
std::vector<int> ComputeSkylineSFS(const PreferenceMatrix& m);

/// Backend-pinned variants — the hooks the differential tests and the
/// hot-path benchmarks use to compare backends within one process (the
/// env-selected backend is cached after first use).
std::vector<int> ComputeSkylineBNL(const PreferenceMatrix& m,
                                   KernelBackend backend);
std::vector<int> ComputeSkylineSFS(const PreferenceMatrix& m,
                                   KernelBackend backend);

/// Default machine skyline (SFS).
inline std::vector<int> ComputeSkyline(const PreferenceMatrix& m) {
  return ComputeSkylineSFS(m);
}

/// Ground-truth skyline of a dataset over all attributes (known + hidden
/// crowd values). Used only for evaluation.
std::vector<int> ComputeGroundTruthSkyline(const Dataset& dataset);

}  // namespace crowdsky
