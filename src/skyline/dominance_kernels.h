// Batched dominance kernels over a struct-of-arrays (column-major) tuple
// layout — the machine-side hot path of every CrowdSky driver.
//
// The row-major PreferenceMatrix is the right shape for one-pair Compare
// calls, but the inner loops of DominanceStructure construction and of the
// sort-filter skylines test ONE probe tuple against a long BLOCK of
// candidates. For that access pattern a column-major mirror (all values of
// attribute k contiguous over the candidates) turns the per-pair branchy
// Compare into a branch-free sweep that emits one dominance bit per
// candidate, 64 candidates per output word.
//
// Backends:
//  * kLegacy  — the historical per-pair PreferenceMatrix::Compare loops;
//               kept callable so differential tests and benches can pin
//               the pre-kernel behavior,
//  * kScalar  — portable word-at-a-time C++ (no intrinsics, any CPU),
//  * kAvx2    — 4-lane double compares via AVX2 intrinsics, compiled with
//               a function-level target attribute (no special build
//               flags) and selected only when the CPU reports AVX2.
//
// Bit-identity is a hard invariant: every backend performs exactly the
// same IEEE-754 `<` / `<=` comparisons (no FMA, no reassociation), so the
// emitted dominance bits — and therefore every skyline, evaluation order,
// crowd question and ledger downstream — are identical across backends
// and thread counts. tests/skyline/dominance_kernels_test.cc enforces
// this differentially.
//
// CROWDSKY_KERNEL=auto|legacy|scalar|avx2 overrides the runtime choice
// (invalid values and avx2-without-CPU-support abort loudly; silent
// fallback would invalidate a recorded benchmark).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/bitset.h"
#include "common/macros.h"
#include "skyline/dominance.h"

namespace crowdsky {

/// \brief Which dominance-kernel implementation to run.
enum class KernelBackend {
  kLegacy,  ///< per-pair PreferenceMatrix::Compare (pre-kernel behavior)
  kScalar,  ///< portable branch-free word-at-a-time kernels
  kAvx2,    ///< AVX2 4-lane kernels (runtime CPU check required)
};

/// Display name: "legacy", "scalar", "avx2".
const char* KernelBackendName(KernelBackend backend);

/// True iff this build and CPU can execute the AVX2 backend.
bool CpuSupportsAvx2();

/// The process-wide backend: CROWDSKY_KERNEL if set (abort on invalid
/// values or an avx2 request on a non-AVX2 CPU), else kAvx2 when the CPU
/// supports it, else kScalar. Cached after the first call.
KernelBackend SelectedKernelBackend();

/// Number of doubles a column is padded to (a multiple of 64 so kernels
/// always run whole 64-candidate word tiles).
inline size_t PaddedCount(size_t count) { return (count + 63) / 64 * 64; }

/// \brief Read-only view of a column-major block: cols[k][0..count) holds
/// attribute k of every member; each column is padded to PaddedCount.
struct SoAView {
  const double* const* cols = nullptr;
  int dims = 0;
  size_t count = 0;
};

/// \brief Column-major mirror of a PreferenceMatrix, optionally permuted.
///
/// Padding rows hold -infinity, which no finite probe can weakly improve
/// on, so `PointDominatesTail` emits zero bits for them by construction
/// (the probe's value is never <= -inf).
class SoAMatrix {
 public:
  /// Mirrors `m` with candidate j of the view = tuple `order[j]`.
  SoAMatrix(const PreferenceMatrix& m, const std::vector<int>& order);
  /// Mirrors `m` in tuple-id order.
  explicit SoAMatrix(const PreferenceMatrix& m);

  int dims() const { return dims_; }
  size_t count() const { return count_; }
  const double* column(int k) const {
    return columns_.data() + static_cast<size_t>(k) * padded_;
  }
  SoAView view() const {
    return SoAView{col_ptrs_.data(), dims_, count_};
  }

 private:
  int dims_ = 0;
  size_t count_ = 0;
  size_t padded_ = 0;
  std::vector<double> columns_;          // dims_ * padded_, column-major
  std::vector<const double*> col_ptrs_;  // dims_ pointers into columns_
};

/// \brief Growable column-major block for skyline windows / candidate
/// pools. Padding (and growth slack) holds +infinity, which strictly
/// dominates nothing, so `AnyDominatesPoint` ignores it by construction.
class SoABlock {
 public:
  explicit SoABlock(int dims);

  /// Appends one member (d contiguous normalized values) with its id.
  void Append(const double* row, int id);

  size_t count() const { return count_; }
  const std::vector<int>& ids() const { return ids_; }
  SoAView view() const {
    return SoAView{col_ptrs_.data(), dims_, count_};
  }

 private:
  void Reserve(size_t capacity);

  int dims_;
  size_t count_ = 0;
  size_t capacity_ = 0;
  std::vector<std::vector<double>> cols_;
  std::vector<const double*> col_ptrs_;
  std::vector<int> ids_;
};

/// Emits one bit per candidate j in [begin, block.count): bit j is set iff
/// `point` strictly dominates candidate j (point <= candidate on every
/// dim, < on at least one). Writes exactly the words covering
/// [begin, block.count) into `out` (indexed in block space: word j/64);
/// bits below `begin` in the first written word and padding bits past
/// block.count in the last are cleared. Words before begin/64 are not
/// touched. `backend` must not be kLegacy.
void PointDominatesTail(const SoAView& block, const double* point,
                        size_t begin, KernelBackend backend,
                        DynamicBitset::Word* out);

/// True iff some member of `block` strictly dominates `point`.
/// `backend` must not be kLegacy.
bool AnyDominatesPoint(const SoAView& block, const double* point,
                       KernelBackend backend);

/// Componentwise minimum of rows `order[begin..end)` of `m` — the virtual
/// "min corner" of a tile. Any tuple that strictly dominates the min
/// corner dominates every tuple in the tile, which is what lets the
/// sort-filter skyline skip whole tiles before any per-tuple kernel call.
void TileMinCorner(const PreferenceMatrix& m, const std::vector<int>& order,
                   size_t begin, size_t end, double* out);

}  // namespace crowdsky
