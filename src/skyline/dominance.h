// Machine-side dominance primitives (Definitions 1-3 of the paper).
//
// PreferenceMatrix normalizes a subset of a dataset's attributes into a
// dense row-major matrix in which *smaller is always preferred* (MAX
// attributes are negated on ingestion), so every comparison downstream is a
// tight branch-free-ish loop regardless of the schema's directions.
#pragma once

#include <vector>

#include "common/macros.h"
#include "data/dataset.h"

namespace crowdsky {

/// Outcome of comparing two tuples under a (partial) preference order.
enum class PartialOrder {
  kDominates,     ///< first tuple dominates second
  kDominatedBy,   ///< second tuple dominates first
  kEqual,         ///< identical on every compared attribute
  kIncomparable,  ///< each is strictly better somewhere
};

/// \brief Direction-normalized view of selected attributes of a dataset.
class PreferenceMatrix {
 public:
  /// Normalizes the given attribute indices of `dataset`.
  PreferenceMatrix(const Dataset& dataset, const std::vector<int>& attrs);

  /// View of the known attributes AK.
  static PreferenceMatrix FromKnown(const Dataset& dataset) {
    return PreferenceMatrix(dataset, dataset.schema().known_indices());
  }
  /// View of the crowd attributes AC (their hidden ground-truth values);
  /// used only by the simulated crowd and by accuracy evaluation.
  static PreferenceMatrix FromCrowd(const Dataset& dataset) {
    return PreferenceMatrix(dataset, dataset.schema().crowd_indices());
  }
  /// View of all attributes (ground-truth skyline).
  static PreferenceMatrix FromAll(const Dataset& dataset);

  /// Wraps an already-normalized row-major matrix (smaller preferred).
  /// Used by the sort-based baselines, whose crowd columns are ranks.
  static PreferenceMatrix FromRaw(int n, int d, std::vector<double> values);

  int size() const { return n_; }
  int dims() const { return d_; }

  /// Row pointer (d() normalized values, smaller preferred).
  const double* row(int id) const {
    CROWDSKY_DCHECK(id >= 0 && id < n_);
    return values_.data() + static_cast<size_t>(id) * static_cast<size_t>(d_);
  }

  /// Normalized value of tuple `id` on compared-attribute `k` (position in
  /// the attrs list, not the schema index).
  double value(int id, int k) const { return row(id)[k]; }

  /// Full pairwise classification of s vs t.
  PartialOrder Compare(int s, int t) const;

  /// True iff s strictly dominates t (Definition 1).
  bool Dominates(int s, int t) const;

  /// True iff s and t are identical on every compared attribute.
  bool EqualRows(int s, int t) const {
    return Compare(s, t) == PartialOrder::kEqual;
  }

  /// Sum of a row's normalized values — a monotone score usable as an SFS
  /// sort key (if s dominates t then Score(s) < Score(t)). Cached once at
  /// construction; reads are O(1).
  double Score(int id) const {
    CROWDSKY_DCHECK(id >= 0 && id < n_);
    return scores_[static_cast<size_t>(id)];
  }

  /// All cached scores, indexed by tuple id.
  const std::vector<double>& scores() const { return scores_; }

 private:
  PreferenceMatrix() = default;

  /// Fills scores_ from values_ (fixed k = 0..d-1 summation order, so the
  /// cached value is bit-identical to the historical per-call sum).
  void ComputeScores();

  int n_ = 0;
  int d_ = 0;
  std::vector<double> values_;
  std::vector<double> scores_;
};

/// Tuple ids of `m` sorted by ascending Score, ties broken by id — the
/// canonical presort shared by the dominance-structure fill and the
/// sort-filter skylines. Deterministic for any input (stable sort over an
/// ascending-id base), which keeps every downstream order bit-identical.
std::vector<int> ScoreSortedOrder(const PreferenceMatrix& m);

}  // namespace crowdsky
