#include "skyline/dominance_kernels.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define CROWDSKY_KERNELS_X86 1
#include <immintrin.h>
#else
#define CROWDSKY_KERNELS_X86 0
#endif

namespace crowdsky {
namespace {

using Word = DynamicBitset::Word;

constexpr double kPadLow = -std::numeric_limits<double>::infinity();
constexpr double kPadHigh = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Word kernels. Each computes one 64-candidate output word: bit j is set
// iff the probe strictly dominates candidate j (Swap=false) or candidate j
// strictly dominates the probe (Swap=true). Per dimension the <= / <
// comparison bits fold into one `le` and one `lt` accumulator; the
// dominance word is le & lt. No early exits inside a word — the
// predictable straight-line sweep beats the branchy per-pair Compare.
//
// Kernels are templated on the dimensionality for d <= kMaxFixedDims with
// a runtime-d fallback: a compile-time d lets the compiler fully unroll
// the dimension loop and keep the hoisted per-dim probe values and column
// pointers in registers, where the runtime loop reloads block.cols[k]
// every iteration (the double indirection is aliasing-opaque). One
// indirect call per word selects the instantiation; the sweep entry
// points resolve it once per call.
// ---------------------------------------------------------------------------

constexpr int kMaxFixedDims = 8;

using WordKernel = Word (*)(const SoAView&, const double*, size_t);

template <int D, bool Swap>
Word DominanceWordScalar(const SoAView& block, const double* point,
                         size_t word) {
  constexpr size_t kD = static_cast<size_t>(D);
  const size_t base = word * 64;
  const double* cols[kD];
  double pv[kD];
  for (size_t k = 0; k < kD; ++k) {
    cols[k] = block.cols[k] + base;
    pv[k] = point[k];
  }
  Word le = ~Word{0};
  Word lt = 0;
  for (size_t k = 0; k < kD; ++k) {
    const double pk = pv[k];
    const double* c = cols[k];
    Word lek = 0;
    Word ltk = 0;
    for (unsigned j = 0; j < 64; ++j) {
      if constexpr (Swap) {
        lek |= static_cast<Word>(c[j] <= pk) << j;
        ltk |= static_cast<Word>(c[j] < pk) << j;
      } else {
        lek |= static_cast<Word>(pk <= c[j]) << j;
        ltk |= static_cast<Word>(pk < c[j]) << j;
      }
    }
    le &= lek;
    lt |= ltk;
  }
  return le & lt;
}

template <bool Swap>
Word DominanceWordScalarN(const SoAView& block, const double* point,
                          size_t word) {
  const size_t base = word * 64;
  Word le = ~Word{0};
  Word lt = 0;
  for (int k = 0; k < block.dims; ++k) {
    const double pk = point[k];
    const double* c = block.cols[k] + base;
    Word lek = 0;
    Word ltk = 0;
    for (unsigned j = 0; j < 64; ++j) {
      if constexpr (Swap) {
        lek |= static_cast<Word>(c[j] <= pk) << j;
        ltk |= static_cast<Word>(c[j] < pk) << j;
      } else {
        lek |= static_cast<Word>(pk <= c[j]) << j;
        ltk |= static_cast<Word>(pk < c[j]) << j;
      }
    }
    le &= lek;
    lt |= ltk;
  }
  return le & lt;
}

// ---------------------------------------------------------------------------
// AVX2 backend: 4 candidate lanes per vector, 16 groups per word, compiled
// with a function-level target attribute so the rest of the binary stays
// baseline-portable. _CMP_LE_OQ / _CMP_LT_OQ are the exact vector forms
// of the scalar <= / < (quiet, ordered: false on NaN), so the emitted
// bits are identical to the scalar backend's by construction.
// ---------------------------------------------------------------------------

#if CROWDSKY_KERNELS_X86

template <int D, bool Swap>
__attribute__((target("avx2"))) Word DominanceWordAvx2(
    const SoAView& block, const double* point, size_t word) {
  constexpr size_t kD = static_cast<size_t>(D);
  const size_t base = word * 64;
  const double* cols[kD];
  __m256d pv[kD];
  for (size_t k = 0; k < kD; ++k) {
    cols[k] = block.cols[k] + base;
    pv[k] = _mm256_set1_pd(point[k]);
  }
  Word out = 0;
  for (unsigned g = 0; g < 16; ++g) {  // 16 groups of 4 lanes = 64 bits
    __m256d le = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    __m256d lt = _mm256_setzero_pd();
    for (size_t k = 0; k < kD; ++k) {
      const __m256d c = _mm256_loadu_pd(cols[k] + g * 4);
      if constexpr (Swap) {
        le = _mm256_and_pd(le, _mm256_cmp_pd(c, pv[k], _CMP_LE_OQ));
        lt = _mm256_or_pd(lt, _mm256_cmp_pd(c, pv[k], _CMP_LT_OQ));
      } else {
        le = _mm256_and_pd(le, _mm256_cmp_pd(pv[k], c, _CMP_LE_OQ));
        lt = _mm256_or_pd(lt, _mm256_cmp_pd(pv[k], c, _CMP_LT_OQ));
      }
    }
    const int mask = _mm256_movemask_pd(_mm256_and_pd(le, lt));
    out |= static_cast<Word>(static_cast<unsigned>(mask)) << (g * 4);
  }
  return out;
}

template <bool Swap>
__attribute__((target("avx2"))) Word DominanceWordAvx2N(
    const SoAView& block, const double* point, size_t word) {
  const size_t base = word * 64;
  Word out = 0;
  for (unsigned g = 0; g < 16; ++g) {
    __m256d le = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    __m256d lt = _mm256_setzero_pd();
    for (int k = 0; k < block.dims; ++k) {
      const __m256d p = _mm256_set1_pd(point[k]);
      const __m256d c = _mm256_loadu_pd(block.cols[k] + base + g * 4);
      if constexpr (Swap) {
        le = _mm256_and_pd(le, _mm256_cmp_pd(c, p, _CMP_LE_OQ));
        lt = _mm256_or_pd(lt, _mm256_cmp_pd(c, p, _CMP_LT_OQ));
      } else {
        le = _mm256_and_pd(le, _mm256_cmp_pd(p, c, _CMP_LE_OQ));
        lt = _mm256_or_pd(lt, _mm256_cmp_pd(p, c, _CMP_LT_OQ));
      }
    }
    const int mask = _mm256_movemask_pd(_mm256_and_pd(le, lt));
    out |= static_cast<Word>(static_cast<unsigned>(mask)) << (g * 4);
  }
  return out;
}

template <bool Swap>
WordKernel SelectAvx2(int dims) {
  switch (dims) {
    case 1: return &DominanceWordAvx2<1, Swap>;
    case 2: return &DominanceWordAvx2<2, Swap>;
    case 3: return &DominanceWordAvx2<3, Swap>;
    case 4: return &DominanceWordAvx2<4, Swap>;
    case 5: return &DominanceWordAvx2<5, Swap>;
    case 6: return &DominanceWordAvx2<6, Swap>;
    case 7: return &DominanceWordAvx2<7, Swap>;
    case kMaxFixedDims: return &DominanceWordAvx2<kMaxFixedDims, Swap>;
    default: return &DominanceWordAvx2N<Swap>;
  }
}

#endif  // CROWDSKY_KERNELS_X86

template <bool Swap>
WordKernel SelectScalar(int dims) {
  switch (dims) {
    case 1: return &DominanceWordScalar<1, Swap>;
    case 2: return &DominanceWordScalar<2, Swap>;
    case 3: return &DominanceWordScalar<3, Swap>;
    case 4: return &DominanceWordScalar<4, Swap>;
    case 5: return &DominanceWordScalar<5, Swap>;
    case 6: return &DominanceWordScalar<6, Swap>;
    case 7: return &DominanceWordScalar<7, Swap>;
    case kMaxFixedDims: return &DominanceWordScalar<kMaxFixedDims, Swap>;
    default: return &DominanceWordScalarN<Swap>;
  }
}

// Swap=false: bit j == "probe dominates candidate j" (structure fill).
// Swap=true: bit j == "candidate j dominates probe" (window tests).
template <bool Swap>
WordKernel SelectWordKernel(int dims, KernelBackend backend) {
#if CROWDSKY_KERNELS_X86
  if (backend == KernelBackend::kAvx2) return SelectAvx2<Swap>(dims);
#endif
  (void)backend;
  return SelectScalar<Swap>(dims);
}

}  // namespace

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kLegacy: return "legacy";
    case KernelBackend::kScalar: return "scalar";
    case KernelBackend::kAvx2: return "avx2";
  }
  return "unknown";
}

bool CpuSupportsAvx2() {
#if CROWDSKY_KERNELS_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

KernelBackend SelectedKernelBackend() {
  static const KernelBackend backend = [] {
    const char* env = std::getenv("CROWDSKY_KERNEL");
    if (env == nullptr || std::strcmp(env, "auto") == 0) {
      return CpuSupportsAvx2() ? KernelBackend::kAvx2
                               : KernelBackend::kScalar;
    }
    if (std::strcmp(env, "legacy") == 0) return KernelBackend::kLegacy;
    if (std::strcmp(env, "scalar") == 0) return KernelBackend::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      // Silent fallback would record benchmarks under the wrong backend
      // and make "tested under avx2" a lie: abort instead.
      CROWDSKY_CHECK_MSG(CpuSupportsAvx2(),
                         "CROWDSKY_KERNEL=avx2 but this CPU/build has no "
                         "AVX2 support");
      return KernelBackend::kAvx2;
    }
    CROWDSKY_CHECK_MSG(false,
                       "invalid CROWDSKY_KERNEL (want auto, legacy, "
                       "scalar, or avx2)");
    return KernelBackend::kScalar;  // unreachable
  }();
  return backend;
}

// ---------------------------------------------------------------------------
// Column-major containers
// ---------------------------------------------------------------------------

SoAMatrix::SoAMatrix(const PreferenceMatrix& m, const std::vector<int>& order)
    : dims_(m.dims()),
      count_(order.size()),
      padded_(PaddedCount(order.size())) {
  CROWDSKY_DCHECK(order.size() == static_cast<size_t>(m.size()));
  // Padding rows are -infinity: no finite probe value is <= -inf, so
  // padding can never come out dominated and the last output word is
  // clean by construction.
  columns_.assign(static_cast<size_t>(dims_) * padded_, kPadLow);
  for (int k = 0; k < dims_; ++k) {
    double* col = columns_.data() + static_cast<size_t>(k) * padded_;
    for (size_t j = 0; j < count_; ++j) {
      col[j] = m.value(order[j], k);
    }
  }
  col_ptrs_.resize(static_cast<size_t>(dims_));
  for (int k = 0; k < dims_; ++k) col_ptrs_[static_cast<size_t>(k)] = column(k);
}

namespace {
std::vector<int> IdentityOrder(int n) {
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  return order;
}
}  // namespace

SoAMatrix::SoAMatrix(const PreferenceMatrix& m)
    : SoAMatrix(m, IdentityOrder(m.size())) {}

SoABlock::SoABlock(int dims) : dims_(dims) {
  CROWDSKY_CHECK(dims >= 0);
  cols_.resize(static_cast<size_t>(dims_));
  col_ptrs_.assign(static_cast<size_t>(dims_), nullptr);
}

void SoABlock::Reserve(size_t capacity) {
  capacity_ = PaddedCount(capacity);
  for (int k = 0; k < dims_; ++k) {
    // Growth slack is +infinity: a +inf member strictly dominates
    // nothing, so AnyDominatesPoint can sweep whole padded words without
    // a tail mask.
    cols_[static_cast<size_t>(k)].resize(capacity_, kPadHigh);
    col_ptrs_[static_cast<size_t>(k)] = cols_[static_cast<size_t>(k)].data();
  }
}

void SoABlock::Append(const double* row, int id) {
  if (count_ == capacity_) {
    Reserve(capacity_ == 0 ? 256 : capacity_ * 2);
  }
  for (int k = 0; k < dims_; ++k) {
    cols_[static_cast<size_t>(k)][count_] = row[k];
  }
  ids_.push_back(id);
  ++count_;
}

// ---------------------------------------------------------------------------
// Kernel entry points
// ---------------------------------------------------------------------------

void PointDominatesTail(const SoAView& block, const double* point,
                        size_t begin, KernelBackend backend,
                        DynamicBitset::Word* out) {
  CROWDSKY_DCHECK(backend != KernelBackend::kLegacy);
  if (begin >= block.count) return;
  const WordKernel kernel =
      SelectWordKernel</*Swap=*/false>(block.dims, backend);
  const size_t first_word = begin / 64;
  const size_t num_words = (block.count + 63) / 64;
  for (size_t w = first_word; w < num_words; ++w) {
    out[w] = kernel(block, point, w);
  }
  // Candidates before `begin` were already handled by the caller's sweep
  // (they cannot be dominated: their sort key is not larger): mask them
  // out of the first word so the row carries exactly the tail bits.
  out[first_word] &= ~Word{0} << (begin % 64);
}

bool AnyDominatesPoint(const SoAView& block, const double* point,
                       KernelBackend backend) {
  CROWDSKY_DCHECK(backend != KernelBackend::kLegacy);
  const WordKernel kernel =
      SelectWordKernel</*Swap=*/true>(block.dims, backend);
  const size_t num_words = (block.count + 63) / 64;
  for (size_t w = 0; w < num_words; ++w) {
    if (kernel(block, point, w) != 0) return true;
  }
  return false;
}

void TileMinCorner(const PreferenceMatrix& m, const std::vector<int>& order,
                   size_t begin, size_t end, double* out) {
  CROWDSKY_DCHECK(begin < end && end <= order.size());
  const int d = m.dims();
  const double* first = m.row(order[begin]);
  for (int k = 0; k < d; ++k) out[k] = first[k];
  for (size_t i = begin + 1; i < end; ++i) {
    const double* row = m.row(order[i]);
    for (int k = 0; k < d; ++k) out[k] = std::min(out[k], row[k]);
  }
}

}  // namespace crowdsky
