#include "skyline/algorithms.h"

#include <algorithm>
#include <numeric>

#include "common/thread_pool.h"
#include "skyline/dominance_kernels.h"

namespace crowdsky {
namespace {

// Below this cardinality the partition/merge scaffolding costs more than
// it saves; both algorithms fall back to their serial form (which is also
// the exact historical code path taken at CROWDSKY_THREADS=1).
constexpr int kParallelSkylineThreshold = 256;

// Tile width of the min-corner skip in the kernel SFS path. One bitset
// word's worth of candidates: the same granularity the dominance kernels
// emit, so a skipped tile is exactly one saved kernel word per window
// member.
constexpr size_t kSfsTile = 64;

// Sorted-prefix length of the seed filter shared by all parallel blocks.
constexpr size_t kSeedFilterMax = 1024;

// Serial BNL over the contiguous id range [begin, end); returns that
// block's skyline ids in ascending order.
std::vector<int> BnlRange(const PreferenceMatrix& m, int begin, int end) {
  std::vector<int> window;
  for (int t = begin; t < end; ++t) {
    bool dominated = false;
    size_t keep = 0;
    for (size_t i = 0; i < window.size(); ++i) {
      const int w = window[i];
      const PartialOrder order = m.Compare(w, t);
      if (order == PartialOrder::kDominates) {
        dominated = true;
        // t will not enter the window, so the rest of the window is kept
        // as-is.
        keep = window.size();
        break;
      }
      if (order == PartialOrder::kDominatedBy) {
        continue;  // w is dominated by t; drop it
      }
      window[keep++] = w;
    }
    window.resize(keep);
    if (!dominated) window.push_back(t);
  }
  std::sort(window.begin(), window.end());
  return window;
}

// Serial SFS over the order slice [begin, end); survivors are returned in
// score (slice) order, not id order.
std::vector<int> SfsSlice(const PreferenceMatrix& m,
                          const std::vector<int>& order, size_t begin,
                          size_t end) {
  std::vector<int> skyline;
  for (size_t i = begin; i < end; ++i) {
    const int t = order[i];
    bool dominated = false;
    for (const int s : skyline) {
      if (m.Dominates(s, t)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(t);
  }
  return skyline;
}

// Merge pass shared by the parallel paths: keeps candidate i iff no
// candidate from another block (any block for BNL, an earlier block for
// SFS — controlled by `earlier_only`) dominates it. Local passes already
// resolved same-block dominance, and strict dominance is transitive, so a
// global dominator that was itself eliminated locally is always
// represented by a surviving candidate from its own block.
std::vector<int> MergeBlockSkylines(const PreferenceMatrix& m,
                                    const std::vector<std::vector<int>>& local,
                                    bool earlier_only) {
  std::vector<int> cand;
  std::vector<int> cand_block;
  for (size_t p = 0; p < local.size(); ++p) {
    for (const int t : local[p]) {
      cand.push_back(t);
      cand_block.push_back(static_cast<int>(p));
    }
  }
  std::vector<char> keep(cand.size(), 1);
  ParallelFor(0, cand.size(), 16, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const int t = cand[i];
      const int bp = cand_block[i];
      for (size_t j = 0; j < cand.size(); ++j) {
        if (cand_block[j] == bp) continue;
        if (earlier_only && cand_block[j] > bp) continue;
        if (m.Dominates(cand[j], t)) {
          keep[i] = 0;
          break;
        }
      }
    }
  });
  std::vector<int> skyline;
  skyline.reserve(cand.size());
  for (size_t i = 0; i < cand.size(); ++i) {
    if (keep[i]) skyline.push_back(cand[i]);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

// Kernel SFS over the score-order slice [begin, end). The window only
// grows (sorted input: no tuple is dominated by a later one), so survivors
// accumulate into a column-major SoABlock the dominance kernels scan a
// word at a time. Tiles of kSfsTile tuples are skipped wholesale when a
// window (or prefilter) member strictly dominates the tile's componentwise
// min corner: s <= corner <= member with a strict dim on the corner implies
// s strictly dominates every member. `prefilter` optionally carries
// already-confirmed skyline tuples (the parallel seed filter); it is only
// read, never appended to.
std::vector<int> KernelSfsSlice(const PreferenceMatrix& m,
                                const std::vector<int>& order, size_t begin,
                                size_t end, KernelBackend backend,
                                const SoABlock* prefilter) {
  SoABlock window(m.dims());
  const bool use_prefilter = prefilter != nullptr && prefilter->count() > 0;
  std::vector<double> corner(static_cast<size_t>(m.dims()));
  for (size_t t0 = begin; t0 < end; t0 += kSfsTile) {
    const size_t t1 = std::min(end, t0 + kSfsTile);
    if (t1 - t0 > 1 && (use_prefilter || window.count() > 0)) {
      TileMinCorner(m, order, t0, t1, corner.data());
      const bool skip =
          (use_prefilter &&
           AnyDominatesPoint(prefilter->view(), corner.data(), backend)) ||
          (window.count() > 0 &&
           AnyDominatesPoint(window.view(), corner.data(), backend));
      if (skip) continue;
    }
    for (size_t i = t0; i < t1; ++i) {
      const int t = order[i];
      const double* row = m.row(t);
      const bool dominated =
          (use_prefilter &&
           AnyDominatesPoint(prefilter->view(), row, backend)) ||
          (window.count() > 0 &&
           AnyDominatesPoint(window.view(), row, backend));
      if (!dominated) window.Append(row, t);
    }
  }
  return window.ids();
}

// Shared kernel skyline: score presort, seed filter, score-partitioned
// blocks, whole-pool merge. Exact for any block count — the skyline set is
// unique, so this agrees bit-for-bit with the legacy serial passes.
std::vector<int> KernelSkyline(const PreferenceMatrix& m,
                               KernelBackend backend) {
  const auto n = static_cast<size_t>(m.size());
  if (n == 0) return {};
  const std::vector<int> order = ScoreSortedOrder(m);
  ThreadPool& pool = ThreadPool::Global();
  if (pool.num_threads() <= 1 || m.size() < kParallelSkylineThreshold) {
    std::vector<int> skyline =
        KernelSfsSlice(m, order, 0, n, backend, nullptr);
    std::sort(skyline.begin(), skyline.end());
    return skyline;
  }
  // Seed filter: the skyline of a sorted prefix is a subset of the global
  // skyline (any dominator has a strictly smaller score, hence also lives
  // in the prefix). One cheap serial pass gives every parallel block a
  // confirmed-skyline prefilter to discard against — including whole-tile
  // min-corner skips — with no inter-block coordination.
  const size_t seed_end = std::min(n, kSeedFilterMax);
  const std::vector<int> seed_ids =
      KernelSfsSlice(m, order, 0, seed_end, backend, nullptr);
  SoABlock seed(m.dims());
  for (const int t : seed_ids) seed.Append(m.row(t), t);

  const size_t rest = n - seed_end;
  if (rest == 0) {
    std::vector<int> skyline = seed_ids;
    std::sort(skyline.begin(), skyline.end());
    return skyline;
  }
  const size_t num_blocks =
      std::min(static_cast<size_t>(pool.num_threads()),
               std::max<size_t>(1, rest / 64));
  const size_t block = (rest + num_blocks - 1) / num_blocks;
  std::vector<std::vector<int>> local(num_blocks);
  pool.ParallelFor(0, num_blocks, 1, [&](size_t lo, size_t hi) {
    for (size_t p = lo; p < hi; ++p) {
      const size_t b = seed_end + p * block;
      const size_t e = std::min(n, seed_end + (p + 1) * block);
      if (b < e) local[p] = KernelSfsSlice(m, order, b, e, backend, &seed);
    }
  });
  // Merge: concatenated in block order the survivors are globally
  // score-sorted, and a dominator always has a strictly smaller score, so
  // testing each candidate against the ENTIRE pool is exact: later-pool
  // members cannot dominate it (their score is not smaller), the self test
  // is vacuous (equal rows never strictly dominate), and any global
  // dominator is represented in the pool or the seed by transitivity —
  // but a seed dominator already eliminated the candidate locally, so the
  // pool alone settles the survivors.
  SoABlock cands(m.dims());
  for (const auto& blk : local) {
    for (const int t : blk) cands.Append(m.row(t), t);
  }
  std::vector<int> skyline = seed_ids;
  const std::vector<int>& cand_ids = cands.ids();
  std::vector<char> keep(cands.count(), 1);
  pool.ParallelFor(0, cands.count(), 64, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      if (AnyDominatesPoint(cands.view(), m.row(cand_ids[i]), backend)) {
        keep[i] = 0;
      }
    }
  });
  for (size_t i = 0; i < cands.count(); ++i) {
    if (keep[i]) skyline.push_back(cand_ids[i]);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace

std::vector<int> ComputeSkylineBNL(const PreferenceMatrix& m) {
  return ComputeSkylineBNL(m, SelectedKernelBackend());
}

std::vector<int> ComputeSkylineBNL(const PreferenceMatrix& m,
                                   KernelBackend backend) {
  if (backend != KernelBackend::kLegacy) {
    // The sorted kernel path subsumes BNL's window churn: the score
    // partition plays the role of BNL's blocks, presorting removes window
    // evictions entirely, and the min-corner test prunes whole partitions
    // before any kernel call. The skyline set is unique, so the result is
    // identical to the classic id-order scan.
    return KernelSkyline(m, backend);
  }
  const int n = m.size();
  ThreadPool& pool = ThreadPool::Global();
  if (pool.num_threads() <= 1 || n < kParallelSkylineThreshold) {
    return BnlRange(m, 0, n);
  }
  // Partition/merge: local BNL per contiguous id block, then a parallel
  // cross-block filter. The skyline set is unique, so the result is
  // identical to the serial pass for every block count.
  const size_t num_blocks =
      std::min<size_t>(static_cast<size_t>(pool.num_threads()),
                       static_cast<size_t>(n) / 64);
  const size_t block = (static_cast<size_t>(n) + num_blocks - 1) / num_blocks;
  std::vector<std::vector<int>> local(num_blocks);
  pool.ParallelFor(0, num_blocks, 1, [&](size_t lo, size_t hi) {
    for (size_t p = lo; p < hi; ++p) {
      const auto begin = static_cast<int>(p * block);
      const int end = std::min(n, static_cast<int>((p + 1) * block));
      local[p] = BnlRange(m, begin, end);
    }
  });
  return MergeBlockSkylines(m, local, /*earlier_only=*/false);
}

std::vector<int> ComputeSkylineSFS(const PreferenceMatrix& m) {
  return ComputeSkylineSFS(m, SelectedKernelBackend());
}

std::vector<int> ComputeSkylineSFS(const PreferenceMatrix& m,
                                   KernelBackend backend) {
  if (backend != KernelBackend::kLegacy) {
    return KernelSkyline(m, backend);
  }
  // Sort by a monotone score: if s dominates t then Score(s) < Score(t),
  // so no tuple can be dominated by a later one — the window only grows.
  const std::vector<int> order = ScoreSortedOrder(m);
  ThreadPool& pool = ThreadPool::Global();
  if (pool.num_threads() <= 1 || m.size() < kParallelSkylineThreshold) {
    std::vector<int> skyline = SfsSlice(m, order, 0, order.size());
    std::sort(skyline.begin(), skyline.end());
    return skyline;
  }
  // Partition the sorted order into contiguous slices. A dominator always
  // has a strictly smaller score, so the merge only needs to test each
  // survivor against earlier blocks' survivors.
  const size_t num_blocks = std::min<size_t>(
      static_cast<size_t>(pool.num_threads()), order.size() / 64);
  const size_t block = (order.size() + num_blocks - 1) / num_blocks;
  std::vector<std::vector<int>> local(num_blocks);
  pool.ParallelFor(0, num_blocks, 1, [&](size_t lo, size_t hi) {
    for (size_t p = lo; p < hi; ++p) {
      const size_t begin = p * block;
      const size_t end = std::min(order.size(), (p + 1) * block);
      local[p] = SfsSlice(m, order, begin, end);
    }
  });
  return MergeBlockSkylines(m, local, /*earlier_only=*/true);
}

std::vector<int> ComputeGroundTruthSkyline(const Dataset& dataset) {
  return ComputeSkylineSFS(PreferenceMatrix::FromAll(dataset));
}

}  // namespace crowdsky
