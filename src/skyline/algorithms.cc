#include "skyline/algorithms.h"

#include <algorithm>
#include <numeric>

namespace crowdsky {

std::vector<int> ComputeSkylineBNL(const PreferenceMatrix& m) {
  std::vector<int> window;
  for (int t = 0; t < m.size(); ++t) {
    bool dominated = false;
    size_t keep = 0;
    for (size_t i = 0; i < window.size(); ++i) {
      const int w = window[i];
      const PartialOrder order = m.Compare(w, t);
      if (order == PartialOrder::kDominates) {
        dominated = true;
        // Tuples after i cannot be dominated by t (they are mutually
        // incomparable with w... not guaranteed; but since t is dominated
        // it will not enter the window, so the rest of the window is kept
        // as-is).
        keep = window.size();
        break;
      }
      if (order == PartialOrder::kDominatedBy) {
        continue;  // w is dominated by t; drop it
      }
      window[keep++] = w;
    }
    window.resize(keep);
    if (!dominated) window.push_back(t);
  }
  std::sort(window.begin(), window.end());
  return window;
}

std::vector<int> ComputeSkylineSFS(const PreferenceMatrix& m) {
  // Sort by a monotone score: if s dominates t then Score(s) < Score(t),
  // so no tuple can be dominated by a later one — the window only grows.
  std::vector<int> order(static_cast<size_t>(m.size()));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> score(order.size());
  for (int id = 0; id < m.size(); ++id) {
    score[static_cast<size_t>(id)] = m.Score(id);
  }
  std::stable_sort(order.begin(), order.end(), [&score](int a, int b) {
    return score[static_cast<size_t>(a)] < score[static_cast<size_t>(b)];
  });
  std::vector<int> skyline;
  for (const int t : order) {
    bool dominated = false;
    for (const int s : skyline) {
      if (m.Dominates(s, t)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(t);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

std::vector<int> ComputeGroundTruthSkyline(const Dataset& dataset) {
  return ComputeSkylineSFS(PreferenceMatrix::FromAll(dataset));
}

}  // namespace crowdsky
