#include "skyline/algorithms.h"

#include <algorithm>
#include <numeric>

#include "common/thread_pool.h"

namespace crowdsky {
namespace {

// Below this cardinality the partition/merge scaffolding costs more than
// it saves; both algorithms fall back to their serial form (which is also
// the exact historical code path taken at CROWDSKY_THREADS=1).
constexpr int kParallelSkylineThreshold = 256;

// Serial BNL over the contiguous id range [begin, end); returns that
// block's skyline ids in ascending order.
std::vector<int> BnlRange(const PreferenceMatrix& m, int begin, int end) {
  std::vector<int> window;
  for (int t = begin; t < end; ++t) {
    bool dominated = false;
    size_t keep = 0;
    for (size_t i = 0; i < window.size(); ++i) {
      const int w = window[i];
      const PartialOrder order = m.Compare(w, t);
      if (order == PartialOrder::kDominates) {
        dominated = true;
        // t will not enter the window, so the rest of the window is kept
        // as-is.
        keep = window.size();
        break;
      }
      if (order == PartialOrder::kDominatedBy) {
        continue;  // w is dominated by t; drop it
      }
      window[keep++] = w;
    }
    window.resize(keep);
    if (!dominated) window.push_back(t);
  }
  std::sort(window.begin(), window.end());
  return window;
}

// Serial SFS over the order slice [begin, end); survivors are returned in
// score (slice) order, not id order.
std::vector<int> SfsSlice(const PreferenceMatrix& m,
                          const std::vector<int>& order, size_t begin,
                          size_t end) {
  std::vector<int> skyline;
  for (size_t i = begin; i < end; ++i) {
    const int t = order[i];
    bool dominated = false;
    for (const int s : skyline) {
      if (m.Dominates(s, t)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(t);
  }
  return skyline;
}

// Merge pass shared by the parallel paths: keeps candidate i iff no
// candidate from another block (any block for BNL, an earlier block for
// SFS — controlled by `earlier_only`) dominates it. Local passes already
// resolved same-block dominance, and strict dominance is transitive, so a
// global dominator that was itself eliminated locally is always
// represented by a surviving candidate from its own block.
std::vector<int> MergeBlockSkylines(const PreferenceMatrix& m,
                                    const std::vector<std::vector<int>>& local,
                                    bool earlier_only) {
  std::vector<int> cand;
  std::vector<int> cand_block;
  for (size_t p = 0; p < local.size(); ++p) {
    for (const int t : local[p]) {
      cand.push_back(t);
      cand_block.push_back(static_cast<int>(p));
    }
  }
  std::vector<char> keep(cand.size(), 1);
  ParallelFor(0, cand.size(), 16, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const int t = cand[i];
      const int bp = cand_block[i];
      for (size_t j = 0; j < cand.size(); ++j) {
        if (cand_block[j] == bp) continue;
        if (earlier_only && cand_block[j] > bp) continue;
        if (m.Dominates(cand[j], t)) {
          keep[i] = 0;
          break;
        }
      }
    }
  });
  std::vector<int> skyline;
  skyline.reserve(cand.size());
  for (size_t i = 0; i < cand.size(); ++i) {
    if (keep[i]) skyline.push_back(cand[i]);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace

std::vector<int> ComputeSkylineBNL(const PreferenceMatrix& m) {
  const int n = m.size();
  ThreadPool& pool = ThreadPool::Global();
  if (pool.num_threads() <= 1 || n < kParallelSkylineThreshold) {
    return BnlRange(m, 0, n);
  }
  // Partition/merge: local BNL per contiguous id block, then a parallel
  // cross-block filter. The skyline set is unique, so the result is
  // identical to the serial pass for every block count.
  const size_t num_blocks =
      std::min<size_t>(static_cast<size_t>(pool.num_threads()),
                       static_cast<size_t>(n) / 64);
  const size_t block = (static_cast<size_t>(n) + num_blocks - 1) / num_blocks;
  std::vector<std::vector<int>> local(num_blocks);
  pool.ParallelFor(0, num_blocks, 1, [&](size_t lo, size_t hi) {
    for (size_t p = lo; p < hi; ++p) {
      const auto begin = static_cast<int>(p * block);
      const int end = std::min(n, static_cast<int>((p + 1) * block));
      local[p] = BnlRange(m, begin, end);
    }
  });
  return MergeBlockSkylines(m, local, /*earlier_only=*/false);
}

std::vector<int> ComputeSkylineSFS(const PreferenceMatrix& m) {
  // Sort by a monotone score: if s dominates t then Score(s) < Score(t),
  // so no tuple can be dominated by a later one — the window only grows.
  std::vector<int> order(static_cast<size_t>(m.size()));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> score(order.size());
  for (int id = 0; id < m.size(); ++id) {
    score[static_cast<size_t>(id)] = m.Score(id);
  }
  std::stable_sort(order.begin(), order.end(), [&score](int a, int b) {
    return score[static_cast<size_t>(a)] < score[static_cast<size_t>(b)];
  });
  ThreadPool& pool = ThreadPool::Global();
  if (pool.num_threads() <= 1 || m.size() < kParallelSkylineThreshold) {
    std::vector<int> skyline = SfsSlice(m, order, 0, order.size());
    std::sort(skyline.begin(), skyline.end());
    return skyline;
  }
  // Partition the sorted order into contiguous slices. A dominator always
  // has a strictly smaller score, so the merge only needs to test each
  // survivor against earlier blocks' survivors.
  const size_t num_blocks = std::min<size_t>(
      static_cast<size_t>(pool.num_threads()), order.size() / 64);
  const size_t block = (order.size() + num_blocks - 1) / num_blocks;
  std::vector<std::vector<int>> local(num_blocks);
  pool.ParallelFor(0, num_blocks, 1, [&](size_t lo, size_t hi) {
    for (size_t p = lo; p < hi; ++p) {
      const size_t begin = p * block;
      const size_t end = std::min(order.size(), (p + 1) * block);
      local[p] = SfsSlice(m, order, begin, end);
    }
  });
  return MergeBlockSkylines(m, local, /*earlier_only=*/true);
}

std::vector<int> ComputeGroundTruthSkyline(const Dataset& dataset) {
  return ComputeSkylineSFS(PreferenceMatrix::FromAll(dataset));
}

}  // namespace crowdsky
