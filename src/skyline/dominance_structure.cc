#include "skyline/dominance_structure.h"

#include <algorithm>
#include <numeric>

#include "common/thread_pool.h"

namespace crowdsky {

// Construction is block-partitioned over the global thread pool. Every
// phase writes disjoint rows (or runs serially), so the resulting
// structure is bit-identical for every thread count — the parallelism
// only changes wall time, never any paper-figure output.
DominanceStructure::DominanceStructure(const PreferenceMatrix& known)
    : n_(known.size()) {
  const auto un = static_cast<size_t>(n_);
  dominatees_.assign(un, DynamicBitset(un));
  dominators_.assign(un, DynamicBitset(un));
  ds_size_.assign(un, 0);
  layer_of_.assign(un, 0);
  direct_dominators_.resize(un);
  ThreadPool& pool = ThreadPool::Global();

  // Score-sorted sweep: if a dominates b then Score(a) < Score(b), so only
  // the earlier tuple of each sorted pair needs testing.
  std::vector<int> order(un);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> score(un);
  for (int id = 0; id < n_; ++id) {
    score[static_cast<size_t>(id)] = known.Score(id);
  }
  std::stable_sort(order.begin(), order.end(), [&score](int a, int b) {
    return score[static_cast<size_t>(a)] < score[static_cast<size_t>(b)];
  });

  // Phase 1 — dominatee rows, one row-range per chunk. Thread i only
  // writes dominatees_ rows of its own sorted positions; the triangular
  // row costs are rebalanced by work-stealing.
  pool.ParallelFor(0, un, 8, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const int a = order[i];
      DynamicBitset& row = dominatees_[static_cast<size_t>(a)];
      for (size_t j = i + 1; j < un; ++j) {
        const int b = order[j];
        if (known.Dominates(a, b)) row.Set(static_cast<size_t>(b));
      }
    }
  });

  // Phase 2 — dominators_ is the transpose of dominatees_. Partitioning
  // the *column* space on word boundaries makes every dominator row the
  // property of exactly one chunk, so the scatter needs no atomics.
  const size_t word_count = un == 0 ? 0 : dominatees_[0].word_count();
  pool.ParallelFor(0, word_count, 1, [&](size_t wlo, size_t whi) {
    using Word = DynamicBitset::Word;
    for (size_t a = 0; a < un; ++a) {
      const Word* src = dominatees_[a].words();
      const size_t aw = a / DynamicBitset::kBitsPerWord;
      const Word abit = Word{1} << (a % DynamicBitset::kBitsPerWord);
      for (size_t wi = wlo; wi < whi; ++wi) {
        Word bits = src[wi];
        while (bits != 0) {
          const size_t b = wi * DynamicBitset::kBitsPerWord +
                           static_cast<size_t>(__builtin_ctzll(bits));
          dominators_[b].words()[aw] |= abit;
          bits &= bits - 1;
        }
      }
    }
  });

  // Merge pass — sizes, evaluation order, skyline, layers.
  pool.ParallelFor(0, un, 64, [&](size_t lo, size_t hi) {
    for (size_t t = lo; t < hi; ++t) {
      ds_size_[t] = static_cast<int>(dominators_[t].Count());
    }
  });

  evaluation_order_.assign(order.begin(), order.end());
  std::stable_sort(evaluation_order_.begin(), evaluation_order_.end(),
                   [this](int a, int b) {
                     const int sa = ds_size_[static_cast<size_t>(a)];
                     const int sb = ds_size_[static_cast<size_t>(b)];
                     if (sa != sb) return sa < sb;
                     return a < b;
                   });

  for (int t = 0; t < n_; ++t) {
    if (ds_size_[static_cast<size_t>(t)] == 0) known_skyline_.push_back(t);
  }

  // Layers via longest dominance chains: layer(t) = 1 + max layer among
  // dominators. evaluation_order_ is a topological order (Lemma 3), so a
  // single serial pass suffices.
  for (const int t : evaluation_order_) {
    int max_layer = 0;
    dominators_[static_cast<size_t>(t)].ForEachSetBit([&](size_t s) {
      max_layer = std::max(max_layer, layer_of_[s]);
    });
    layer_of_[static_cast<size_t>(t)] = max_layer + 1;
    num_layers_ = std::max(num_layers_, max_layer + 1);
  }
  layers_.resize(static_cast<size_t>(num_layers_));
  for (int t = 0; t < n_; ++t) {
    layers_[static_cast<size_t>(layer_of_[static_cast<size_t>(t)] - 1)]
        .push_back(t);
  }

  // Direct dominators (transitive reduction): s in c(t) iff s dominates t
  // and dominates no other dominator of t. Layer-ordered node list: layer
  // 1 is exactly the empty-dominator-set nodes, so starting at layer 2
  // skips them without a per-node test; each remaining node is
  // independent, so the scan parallelizes over the pool.
  std::vector<int> nodes;
  nodes.reserve(un - known_skyline_.size());
  for (int l = 2; l <= num_layers_; ++l) {
    const std::vector<int>& members = layers_[static_cast<size_t>(l - 1)];
    nodes.insert(nodes.end(), members.begin(), members.end());
  }
  pool.ParallelFor(0, nodes.size(), 16, [&](size_t lo, size_t hi) {
    for (size_t idx = lo; idx < hi; ++idx) {
      const auto t = static_cast<size_t>(nodes[idx]);
      const DynamicBitset& ds_bits = dominators_[t];
      std::vector<int>& direct = direct_dominators_[t];
      direct.reserve(static_cast<size_t>(std::min(ds_size_[t], 8)));
      ds_bits.ForEachSetBit([&](size_t s) {
        if (!dominatees_[s].Intersects(ds_bits)) {
          direct.push_back(static_cast<int>(s));
        }
      });
    }
  });
}

}  // namespace crowdsky
