#include "skyline/dominance_structure.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace crowdsky {

// Construction is block-partitioned over the global thread pool. Every
// phase writes disjoint rows (or runs serially), so the resulting
// structure is bit-identical for every thread count — the parallelism
// only changes wall time, never any paper-figure output.
DominanceStructure::DominanceStructure(const PreferenceMatrix& known)
    : DominanceStructure(known, SelectedKernelBackend()) {}

DominanceStructure::DominanceStructure(const PreferenceMatrix& known,
                                       KernelBackend backend)
    : n_(known.size()) {
  using Word = DynamicBitset::Word;
  constexpr size_t kBits = DynamicBitset::kBitsPerWord;
  const auto un = static_cast<size_t>(n_);
  dominatees_.assign(un, DynamicBitset(un));
  dominators_.assign(un, DynamicBitset(un));
  ds_size_.assign(un, 0);
  layer_of_.assign(un, 0);
  direct_dominators_.resize(un);
  ThreadPool& pool = ThreadPool::Global();

  // Score-sorted sweep: if a dominates b then Score(a) < Score(b), so only
  // the earlier tuple of each sorted pair needs testing.
  const std::vector<int> order = ScoreSortedOrder(known);
  const size_t word_count = un == 0 ? 0 : dominatees_[0].word_count();

  // Kernel backends keep the phase-1 rows in sorted coordinates (row i =
  // dominated sorted positions > i) so the transitive reduction below can
  // run as streaming word sweeps; row i lives at sdom[i * word_count].
  std::vector<Word> sdom;

  // Phase 1 — dominatee rows, one row-range per chunk. Thread i only
  // writes dominatees_ rows of its own sorted positions; the triangular
  // row costs are rebalanced by work-stealing.
  if (backend == KernelBackend::kLegacy) {
    pool.ParallelFor(0, un, 8, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const int a = order[i];
        DynamicBitset& row = dominatees_[static_cast<size_t>(a)];
        for (size_t j = i + 1; j < un; ++j) {
          const int b = order[j];
          if (known.Dominates(a, b)) row.Set(static_cast<size_t>(b));
        }
      }
    });
  } else {
    // Kernel fill: a column-major mirror of the matrix in sorted order
    // lets each probe sweep its whole tail 64 candidates per output word
    // (skyline/dominance_kernels.h). The tail bits land in the probe's
    // sorted-space row; set bits are then scattered into id space. The
    // bits are identical to the legacy per-pair sweep: the kernels
    // evaluate the same IEEE <=/< comparisons, and no tuple at sorted
    // position <= i can be dominated by the probe (its score is not
    // larger), so the full-tail scan covers exactly the legacy pairs.
    sdom.assign(un * word_count, 0);
    const SoAMatrix soa(known, order);
    pool.ParallelFor(0, un, 8, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        if (i + 1 >= un) continue;
        const int a = order[i];
        Word* rowbuf = sdom.data() + i * word_count;
        PointDominatesTail(soa.view(), known.row(a), i + 1, backend, rowbuf);
        DynamicBitset& row = dominatees_[static_cast<size_t>(a)];
        for (size_t wi = (i + 1) / kBits; wi < word_count; ++wi) {
          Word bits = rowbuf[wi];
          while (bits != 0) {
            const size_t j =
                wi * kBits + static_cast<size_t>(__builtin_ctzll(bits));
            row.Set(static_cast<size_t>(order[j]));
            bits &= bits - 1;
          }
        }
      }
    });
  }

  // Phase 2 — dominators_ is the transpose of dominatees_, done 64x64
  // bits at a time: gather one word column of 64 rows, Transpose64x64,
  // scatter the result as whole words (instead of one store per set
  // bit). Partitioning the *column* space makes every dominator row the
  // property of exactly one chunk, so the scatter needs no atomics.
  pool.ParallelFor(0, word_count, 1, [&](size_t wlo, size_t whi) {
    Word blk[kBits];
    for (size_t wb = wlo; wb < whi; ++wb) {
      const size_t b0 = wb * kBits;
      const size_t bcols = std::min(kBits, un - b0);
      for (size_t ab = 0; ab < word_count; ++ab) {
        const size_t a0 = ab * kBits;
        const size_t arows = std::min(kBits, un - a0);
        Word any = 0;
        for (size_t k = 0; k < arows; ++k) {
          blk[k] = dominatees_[a0 + k].words()[wb];
          any |= blk[k];
        }
        if (any == 0) continue;
        for (size_t k = arows; k < kBits; ++k) blk[k] = 0;
        Transpose64x64(blk);
        for (size_t k = 0; k < bcols; ++k) {
          if (blk[k] != 0) dominators_[b0 + k].words()[ab] = blk[k];
        }
      }
    }
  });

  // Merge pass — sizes, evaluation order, skyline.
  pool.ParallelFor(0, un, 64, [&](size_t lo, size_t hi) {
    for (size_t t = lo; t < hi; ++t) {
      ds_size_[t] = static_cast<int>(dominators_[t].Count());
    }
  });

  evaluation_order_.assign(order.begin(), order.end());
  std::stable_sort(evaluation_order_.begin(), evaluation_order_.end(),
                   [this](int a, int b) {
                     const int sa = ds_size_[static_cast<size_t>(a)];
                     const int sb = ds_size_[static_cast<size_t>(b)];
                     if (sa != sb) return sa < sb;
                     return a < b;
                   });

  for (int t = 0; t < n_; ++t) {
    if (ds_size_[static_cast<size_t>(t)] == 0) known_skyline_.push_back(t);
  }

  // Layers + direct dominators. Both backends produce identical values;
  // the legacy branch keeps the historical per-pair scans (it is the
  // oracle the differential tests compare against), the kernel branch
  // reuses the sorted-space rows for a streaming formulation.
  const auto fill_layers = [this, un] {
    layers_.resize(static_cast<size_t>(num_layers_));
    for (size_t t = 0; t < un; ++t) {
      layers_[static_cast<size_t>(layer_of_[t] - 1)].push_back(
          static_cast<int>(t));
    }
  };

  if (backend == KernelBackend::kLegacy) {
    // Layers via longest dominance chains: layer(t) = 1 + max layer among
    // dominators. evaluation_order_ is a topological order (Lemma 3), so
    // a single serial pass suffices.
    for (const int t : evaluation_order_) {
      int max_layer = 0;
      dominators_[static_cast<size_t>(t)].ForEachSetBit([&](size_t s) {
        max_layer = std::max(max_layer, layer_of_[s]);
      });
      layer_of_[static_cast<size_t>(t)] = max_layer + 1;
      num_layers_ = std::max(num_layers_, max_layer + 1);
    }
    fill_layers();

    // Direct dominators (transitive reduction): s in c(t) iff s dominates
    // t and dominates no other dominator of t. Layer-ordered node list:
    // layer 1 is exactly the empty-dominator-set nodes, so starting at
    // layer 2 skips them without a per-node test; each remaining node is
    // independent, so the scan parallelizes over the pool.
    std::vector<int> nodes;
    nodes.reserve(un - known_skyline_.size());
    for (int l = 2; l <= num_layers_; ++l) {
      const std::vector<int>& members = layers_[static_cast<size_t>(l - 1)];
      nodes.insert(nodes.end(), members.begin(), members.end());
    }
    pool.ParallelFor(0, nodes.size(), 16, [&](size_t lo, size_t hi) {
      for (size_t idx = lo; idx < hi; ++idx) {
        const auto t = static_cast<size_t>(nodes[idx]);
        const DynamicBitset& ds_bits = dominators_[t];
        std::vector<int>& direct = direct_dominators_[t];
        direct.reserve(static_cast<size_t>(std::min(ds_size_[t], 8)));
        ds_bits.ForEachSetBit([&](size_t s) {
          if (!dominatees_[s].Intersects(ds_bits)) {
            direct.push_back(static_cast<int>(s));
          }
        });
      }
    });
  } else {
    // Direct dominators, parent side: an edge i -> j (sorted positions)
    // is transitive iff some earlier *direct* child k of i dominates j —
    // if a non-direct child witnesses it, recursing through ITS
    // dominator inside ds(i) bottoms out at a direct child that also
    // dominates j. So one ascending sweep of row i with a running
    // `covered` union of the direct children's rows classifies every
    // edge with one bit test, and the per-edge cost drops from a full
    // early-exit Intersects scan to a streaming word OR over the tail.
    struct EdgeSink {
      Mutex mu;
      // (dominatee id, dominator id) pairs, in chunk-arrival order.
      std::vector<std::pair<int, int>> edges CROWDSKY_GUARDED_BY(mu);
    } sink;
    pool.ParallelFor(0, un, 16, [&](size_t lo, size_t hi) {
      std::vector<Word> covered(word_count, 0);
      std::vector<std::pair<int, int>> local;
      for (size_t i = lo; i < hi; ++i) {
        const Word* row = sdom.data() + i * word_count;
        size_t dirty_from = word_count;
        for (size_t wi = (i + 1) / kBits; wi < word_count; ++wi) {
          Word bits = row[wi];
          while (bits != 0) {
            const size_t j =
                wi * kBits + static_cast<size_t>(__builtin_ctzll(bits));
            bits &= bits - 1;
            if ((covered[j / kBits] >> (j % kBits)) & 1u) continue;
            local.emplace_back(order[j], order[i]);
            // sdom row j is zero before word (j+1)/64, so the OR (and the
            // later reset) only needs the tail.
            const size_t w0 = (j + 1) / kBits;
            const Word* crow = sdom.data() + j * word_count;
            for (size_t w = w0; w < word_count; ++w) covered[w] |= crow[w];
            if (w0 < dirty_from) dirty_from = w0;
          }
        }
        if (dirty_from < word_count) {
          std::fill(covered.begin() + static_cast<ptrdiff_t>(dirty_from),
                    covered.end(), Word{0});
        }
      }
      if (!local.empty()) {
        const MutexLock lock(sink.mu);
        sink.edges.insert(sink.edges.end(), local.begin(), local.end());
      }
    });
    std::vector<std::pair<int, int>> edges;
    {
      const MutexLock lock(sink.mu);
      edges = std::move(sink.edges);
    }
    for (const std::pair<int, int>& e : edges) {
      direct_dominators_[static_cast<size_t>(e.first)].push_back(e.second);
    }
    // Chunk arrival order is thread-dependent; ascending-id lists (the
    // legacy iteration order) restore determinism.
    pool.ParallelFor(0, un, 256, [&](size_t lo, size_t hi) {
      for (size_t t = lo; t < hi; ++t) {
        std::sort(direct_dominators_[t].begin(), direct_dominators_[t].end());
      }
    });

    // Layers from direct edges only: every dominator of t has a direct
    // dominator of t at the same or a higher layer (follow its chain of
    // witnesses inside ds(t)), so max over c(t) equals max over ds(t).
    // Sorted order is topological — dominators sort strictly earlier.
    for (size_t p = 0; p < un; ++p) {
      const auto t = static_cast<size_t>(order[p]);
      int max_layer = 0;
      for (const int s : direct_dominators_[t]) {
        max_layer = std::max(max_layer, layer_of_[static_cast<size_t>(s)]);
      }
      layer_of_[t] = max_layer + 1;
      num_layers_ = std::max(num_layers_, max_layer + 1);
    }
    fill_layers();
  }
}

}  // namespace crowdsky
