#include "skyline/dominance_structure.h"

#include <algorithm>
#include <numeric>

namespace crowdsky {

DominanceStructure::DominanceStructure(const PreferenceMatrix& known)
    : n_(known.size()) {
  const auto un = static_cast<size_t>(n_);
  dominatees_.assign(un, DynamicBitset(un));
  dominators_.assign(un, DynamicBitset(un));
  ds_size_.assign(un, 0);
  layer_of_.assign(un, 0);
  direct_dominators_.resize(un);

  // Score-sorted sweep: if a dominates b then Score(a) < Score(b), so only
  // the earlier tuple of each sorted pair needs testing.
  std::vector<int> order(un);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> score(un);
  for (int id = 0; id < n_; ++id) {
    score[static_cast<size_t>(id)] = known.Score(id);
  }
  std::stable_sort(order.begin(), order.end(), [&score](int a, int b) {
    return score[static_cast<size_t>(a)] < score[static_cast<size_t>(b)];
  });
  for (size_t i = 0; i < un; ++i) {
    const int a = order[i];
    for (size_t j = i + 1; j < un; ++j) {
      const int b = order[j];
      if (known.Dominates(a, b)) {
        dominatees_[static_cast<size_t>(a)].Set(static_cast<size_t>(b));
        dominators_[static_cast<size_t>(b)].Set(static_cast<size_t>(a));
        ++ds_size_[static_cast<size_t>(b)];
      }
    }
  }

  evaluation_order_.assign(order.begin(), order.end());
  std::stable_sort(evaluation_order_.begin(), evaluation_order_.end(),
                   [this](int a, int b) {
                     const int sa = ds_size_[static_cast<size_t>(a)];
                     const int sb = ds_size_[static_cast<size_t>(b)];
                     if (sa != sb) return sa < sb;
                     return a < b;
                   });

  for (int t = 0; t < n_; ++t) {
    if (ds_size_[static_cast<size_t>(t)] == 0) known_skyline_.push_back(t);
  }

  // Layers via longest dominance chains: layer(t) = 1 + max layer among
  // dominators. evaluation_order_ is a topological order (Lemma 3), so a
  // single pass suffices.
  for (const int t : evaluation_order_) {
    int max_layer = 0;
    dominators_[static_cast<size_t>(t)].ForEachSetBit([&](size_t s) {
      max_layer = std::max(max_layer, layer_of_[s]);
    });
    layer_of_[static_cast<size_t>(t)] = max_layer + 1;
    num_layers_ = std::max(num_layers_, max_layer + 1);
  }
  layers_.resize(static_cast<size_t>(num_layers_));
  for (int t = 0; t < n_; ++t) {
    layers_[static_cast<size_t>(layer_of_[static_cast<size_t>(t)] - 1)]
        .push_back(t);
  }

  // Direct dominators (transitive reduction): s in c(t) iff s dominates t
  // and dominates no other dominator of t.
  for (int t = 0; t < n_; ++t) {
    const DynamicBitset& ds_bits = dominators_[static_cast<size_t>(t)];
    ds_bits.ForEachSetBit([&](size_t s) {
      if (!dominatees_[s].Intersects(ds_bits)) {
        direct_dominators_[static_cast<size_t>(t)].push_back(
            static_cast<int>(s));
      }
    });
  }
}

}  // namespace crowdsky
