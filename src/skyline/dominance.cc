#include "skyline/dominance.h"

#include <algorithm>
#include <numeric>

namespace crowdsky {

PreferenceMatrix::PreferenceMatrix(const Dataset& dataset,
                                   const std::vector<int>& attrs)
    : n_(dataset.size()), d_(static_cast<int>(attrs.size())) {
  values_.resize(static_cast<size_t>(n_) * static_cast<size_t>(d_));
  const Schema& schema = dataset.schema();
  for (int id = 0; id < n_; ++id) {
    double* out =
        values_.data() + static_cast<size_t>(id) * static_cast<size_t>(d_);
    for (int k = 0; k < d_; ++k) {
      const int attr = attrs[static_cast<size_t>(k)];
      const double v = dataset.value(id, attr);
      out[k] =
          schema.attribute(attr).direction == Direction::kMin ? v : -v;
    }
  }
  ComputeScores();
}

PreferenceMatrix PreferenceMatrix::FromAll(const Dataset& dataset) {
  std::vector<int> attrs(
      static_cast<size_t>(dataset.schema().num_attributes()));
  for (size_t i = 0; i < attrs.size(); ++i) attrs[i] = static_cast<int>(i);
  return PreferenceMatrix(dataset, attrs);
}

PreferenceMatrix PreferenceMatrix::FromRaw(int n, int d,
                                           std::vector<double> values) {
  CROWDSKY_CHECK(n >= 0 && d >= 0 &&
                 values.size() ==
                     static_cast<size_t>(n) * static_cast<size_t>(d));
  PreferenceMatrix m;
  m.n_ = n;
  m.d_ = d;
  m.values_ = std::move(values);
  m.ComputeScores();
  return m;
}

void PreferenceMatrix::ComputeScores() {
  scores_.resize(static_cast<size_t>(n_));
  for (int id = 0; id < n_; ++id) {
    const double* a = row(id);
    double sum = 0.0;
    for (int k = 0; k < d_; ++k) sum += a[k];
    scores_[static_cast<size_t>(id)] = sum;
  }
}

PartialOrder PreferenceMatrix::Compare(int s, int t) const {
  const double* a = row(s);
  const double* b = row(t);
  bool s_better = false;
  bool t_better = false;
  for (int k = 0; k < d_; ++k) {
    if (a[k] < b[k]) {
      s_better = true;
    } else if (a[k] > b[k]) {
      t_better = true;
    }
    if (s_better && t_better) return PartialOrder::kIncomparable;
  }
  if (s_better) return PartialOrder::kDominates;
  if (t_better) return PartialOrder::kDominatedBy;
  return PartialOrder::kEqual;
}

bool PreferenceMatrix::Dominates(int s, int t) const {
  const double* a = row(s);
  const double* b = row(t);
  bool strict = false;
  for (int k = 0; k < d_; ++k) {
    if (a[k] > b[k]) return false;
    if (a[k] < b[k]) strict = true;
  }
  return strict;
}

std::vector<int> ScoreSortedOrder(const PreferenceMatrix& m) {
  std::vector<int> order(static_cast<size_t>(m.size()));
  std::iota(order.begin(), order.end(), 0);
  // Stable sort over the ascending-id base order == ties broken by id.
  std::stable_sort(order.begin(), order.end(), [&m](int a, int b) {
    return m.Score(a) < m.Score(b);
  });
  return order;
}

}  // namespace crowdsky
