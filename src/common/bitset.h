// DynamicBitset: a run-time sized bitset with the bulk operations needed by
// the dominance machinery (dominatee masks, transitive-closure rows).
//
// std::vector<bool> lacks word-level access and std::bitset is fixed-size;
// the skyline and preference-graph code needs fast AND/OR/ANDNOT, popcount,
// intersection tests and set-bit iteration over ~10^4-bit sets, so we keep
// our own minimal implementation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"

namespace crowdsky {

/// \brief Run-time sized bitset with word-parallel bulk operations.
class DynamicBitset {
 public:
  using Word = uint64_t;
  static constexpr size_t kBitsPerWord = 64;

  DynamicBitset() = default;
  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(size_t size)
      : size_(size), words_((size + kBitsPerWord - 1) / kBitsPerWord, 0) {}

  /// Constructs a bitset of `size` bits directly from a word span (e.g. a
  /// row of a packed parallel fill buffer), avoiding the zero-fill +
  /// per-bit Set round trip. Missing words are treated as zero; bits past
  /// `size` in the last word are cleared.
  DynamicBitset(size_t size, const Word* word_data, size_t num_words)
      : size_(size), words_((size + kBitsPerWord - 1) / kBitsPerWord, 0) {
    const size_t copy = num_words < words_.size() ? num_words : words_.size();
    std::copy(word_data, word_data + copy, words_.begin());
    ClearPadding();
  }

  /// Span form of the word constructor, for fill paths that already hold
  /// their packed rows as spans.
  DynamicBitset(size_t size, std::span<const Word> words)
      : DynamicBitset(size, words.data(), words.size()) {}

  /// Number of bits.
  size_t size() const { return size_; }
  /// Number of backing 64-bit words.
  size_t word_count() const { return words_.size(); }

  /// Resizes to `size` bits; newly added bits are clear.
  void Resize(size_t size) {
    size_ = size;
    words_.resize((size + kBitsPerWord - 1) / kBitsPerWord, 0);
    ClearPadding();
  }

  void Set(size_t i) {
    CROWDSKY_DCHECK(i < size_);
    words_[i / kBitsPerWord] |= Word{1} << (i % kBitsPerWord);
  }
  void Reset(size_t i) {
    CROWDSKY_DCHECK(i < size_);
    words_[i / kBitsPerWord] &= ~(Word{1} << (i % kBitsPerWord));
  }
  void SetTo(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }
  bool Test(size_t i) const {
    CROWDSKY_DCHECK(i < size_);
    return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u;
  }

  /// Clears all bits.
  void ClearAll() {
    for (auto& w : words_) w = 0;
  }
  /// Sets all bits.
  void SetAll() {
    for (auto& w : words_) w = ~Word{0};
    ClearPadding();
  }

  /// Number of set bits.
  size_t Count() const { return CountWordRange(0, words_.size()); }

  /// Popcount over the word range [first_word, end_word) — the block
  /// form used by fill paths and closure code that track partial sizes
  /// without touching the whole row.
  size_t CountWordRange(size_t first_word, size_t end_word) const {
    CROWDSKY_DCHECK(first_word <= end_word && end_word <= words_.size());
    // Four independent accumulators: popcount has multi-cycle latency, so
    // a single serial chain stalls; splitting the dependency keeps the
    // ALUs fed (the same unroll pattern all Count* loops below use).
    size_t n0 = 0, n1 = 0, n2 = 0, n3 = 0;
    size_t i = first_word;
    for (; i + 4 <= end_word; i += 4) {
      n0 += static_cast<size_t>(__builtin_popcountll(words_[i]));
      n1 += static_cast<size_t>(__builtin_popcountll(words_[i + 1]));
      n2 += static_cast<size_t>(__builtin_popcountll(words_[i + 2]));
      n3 += static_cast<size_t>(__builtin_popcountll(words_[i + 3]));
    }
    for (; i < end_word; ++i) {
      n0 += static_cast<size_t>(__builtin_popcountll(words_[i]));
    }
    return n0 + n1 + n2 + n3;
  }
  /// True iff no bit is set.
  bool None() const {
    for (Word w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  bool Any() const { return !None(); }

  /// this |= other. Sizes must match.
  void OrWith(const DynamicBitset& other) {
    CROWDSKY_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }
  /// this &= other.
  void AndWith(const DynamicBitset& other) {
    CROWDSKY_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }
  /// this &= ~other.
  void AndNotWith(const DynamicBitset& other) {
    CROWDSKY_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }

  /// this = a & ~b in one pass (no copy-then-AndNotWith round trip).
  /// Adopts a's size.
  void AssignAndNot(const DynamicBitset& a, const DynamicBitset& b) {
    CROWDSKY_DCHECK(a.size_ == b.size_);
    size_ = a.size_;
    words_.resize(a.words_.size());
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] = a.words_[i] & ~b.words_[i];
    }
  }

  /// this |= (or_src & ~minus) in one pass — the fused form the
  /// transitive-closure rows want when propagating a row minus a removed
  /// set, instead of materializing the difference or sweeping twice.
  void OrAndNotWith(const DynamicBitset& or_src, const DynamicBitset& minus) {
    CROWDSKY_DCHECK(size_ == or_src.size_ && size_ == minus.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= or_src.words_[i] & ~minus.words_[i];
    }
  }

  /// this |= other, plus Set(bit), in one call — the closure insert's
  /// "absorb the row and the row's owner" step without a second pass.
  void OrWithAndSet(const DynamicBitset& other, size_t bit) {
    CROWDSKY_DCHECK(size_ == other.size_ && bit < size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    words_[bit / kBitsPerWord] |= Word{1} << (bit % kBitsPerWord);
  }

  /// this |= other, returning the popcount of the result from the same
  /// word loop — fuses OrWith + Count for transitive-closure updates that
  /// need the new set size.
  size_t OrWithCount(const DynamicBitset& other) {
    CROWDSKY_DCHECK(size_ == other.size_);
    size_t n = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      const Word w = words_[i] | other.words_[i];
      words_[i] = w;
      n += static_cast<size_t>(__builtin_popcountll(w));
    }
    return n;
  }

  /// popcount(this & ~other) without materializing the difference.
  size_t AndNotCount(const DynamicBitset& other) const {
    CROWDSKY_DCHECK(size_ == other.size_);
    size_t n0 = 0, n1 = 0;
    size_t i = 0;
    for (; i + 2 <= words_.size(); i += 2) {
      n0 += static_cast<size_t>(
          __builtin_popcountll(words_[i] & ~other.words_[i]));
      n1 += static_cast<size_t>(
          __builtin_popcountll(words_[i + 1] & ~other.words_[i + 1]));
    }
    for (; i < words_.size(); ++i) {
      n0 += static_cast<size_t>(
          __builtin_popcountll(words_[i] & ~other.words_[i]));
    }
    return n0 + n1;
  }

  /// True iff (this & other) has at least one set bit.
  bool Intersects(const DynamicBitset& other) const {
    CROWDSKY_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  /// popcount(this & other) without materializing the intersection.
  size_t IntersectionCount(const DynamicBitset& other) const {
    CROWDSKY_DCHECK(size_ == other.size_);
    size_t n0 = 0, n1 = 0;
    size_t i = 0;
    for (; i + 2 <= words_.size(); i += 2) {
      n0 += static_cast<size_t>(
          __builtin_popcountll(words_[i] & other.words_[i]));
      n1 += static_cast<size_t>(
          __builtin_popcountll(words_[i + 1] & other.words_[i + 1]));
    }
    for (; i < words_.size(); ++i) {
      n0 += static_cast<size_t>(
          __builtin_popcountll(words_[i] & other.words_[i]));
    }
    return n0 + n1;
  }

  /// True iff every set bit of this is also set in other.
  bool IsSubsetOf(const DynamicBitset& other) const {
    CROWDSKY_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & ~other.words_[i]) return false;
    }
    return true;
  }

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Index of the lowest set bit, or size() if none.
  size_t FindFirst() const { return FindNext(0); }

  /// Index of the lowest set bit >= from, or size() if none.
  size_t FindNext(size_t from) const {
    if (from >= size_) return size_;
    size_t wi = from / kBitsPerWord;
    Word w = words_[wi] & (~Word{0} << (from % kBitsPerWord));
    while (true) {
      if (w != 0) {
        return wi * kBitsPerWord +
               static_cast<size_t>(__builtin_ctzll(w));
      }
      if (++wi >= words_.size()) return size_;
      w = words_[wi];
    }
  }

  /// Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      Word w = words_[wi];
      while (w != 0) {
        const auto bit = static_cast<size_t>(__builtin_ctzll(w));
        fn(wi * kBitsPerWord + bit);
        w &= w - 1;
      }
    }
  }

  /// Collects set-bit indices into a vector<int> (ids in this codebase are
  /// ints).
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(Count());
    ForEachSetBit([&out](size_t i) { out.push_back(static_cast<int>(i)); });
    return out;
  }

  /// Direct word access (read-only), for fused custom loops.
  const Word* words() const { return words_.data(); }
  /// Mutable word access for bulk fill paths (e.g. the parallel dominance
  /// transpose) that write whole words. Callers must keep padding bits
  /// past size() clear.
  Word* words() { return words_.data(); }

 private:
  // Bits beyond size_ in the last word must stay clear so Count()/None()
  // remain exact.
  void ClearPadding() {
    const size_t rem = size_ % kBitsPerWord;
    if (!words_.empty() && rem != 0) {
      words_.back() &= (Word{1} << rem) - 1;
    }
  }

  size_t size_ = 0;
  std::vector<Word> words_;
};

/// In-place transpose of a 64x64 bit matrix held as 64 words, where
/// `w[r]` is row r and bit c of it is column c. After the call,
/// bit c of w[r] equals the old bit r of w[c]. This is the recursive
/// block-swap scheme (swap the off-diagonal 32x32 halves, then 16x16
/// inside each half, ...): 6 rounds of masked shift-XOR instead of 4096
/// single-bit moves, which is what makes word-blocked bit-matrix
/// transposes (e.g. the dominance transpose) cheap.
inline void Transpose64x64(DynamicBitset::Word w[64]) {
  using Word = DynamicBitset::Word;
  Word m = 0x00000000FFFFFFFFULL;
  for (size_t j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (size_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const Word t = ((w[k] >> j) ^ w[k + j]) & m;
      w[k] ^= t << j;
      w[k + j] ^= t;
    }
  }
}

}  // namespace crowdsky
