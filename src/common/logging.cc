#include "common/logging.h"

#include <cstdio>

namespace crowdsky {
namespace {

LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from __FILE__ for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_min_level)) return;
  const std::string line = stream_.str();
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace internal
}  // namespace crowdsky
