// Result<T>: a value or an error Status, following the Arrow idiom.
#pragma once

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace crowdsky {

/// \brief Holds either a value of type T or an error Status.
///
/// Typical use:
/// \code
///   Result<Dataset> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   Dataset ds = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
  Result(T value) : value_(std::move(value)) {}
  /// Constructs from an error status (implicit, enables `return status;`).
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
  Result(Status status)
      : status_(std::move(status)) {
    CROWDSKY_CHECK_MSG(!status_.ok(),
                       "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  /// The error status; Status::OK() if a value is present.
  const Status& status() const { return status_; }

  /// Access the value; aborts if this Result holds an error.
  ///
  /// The guards test value_.has_value() directly (not ok()) so that
  /// flow-sensitive checkers (bugprone-unchecked-optional-access) can see
  /// that the abort branch dominates every dereference.
  const T& ValueOrDie() const& {
    CROWDSKY_CHECK_MSG(value_.has_value(), status_.ToString().c_str());
    return *value_;
  }
  T& ValueOrDie() & {
    CROWDSKY_CHECK_MSG(value_.has_value(), status_.ToString().c_str());
    return *value_;
  }
  T ValueOrDie() && {
    CROWDSKY_CHECK_MSG(value_.has_value(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const& {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace crowdsky

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller.
#define CROWDSKY_ASSIGN_OR_RETURN(lhs, rexpr)       \
  auto CROWDSKY_CONCAT_(_result_, __LINE__) = (rexpr);               \
  if (CROWDSKY_PREDICT_FALSE(!CROWDSKY_CONCAT_(_result_, __LINE__).ok())) { \
    return CROWDSKY_CONCAT_(_result_, __LINE__).status();            \
  }                                                                  \
  lhs = std::move(CROWDSKY_CONCAT_(_result_, __LINE__)).ValueOrDie()

#define CROWDSKY_CONCAT_IMPL_(a, b) a##b
#define CROWDSKY_CONCAT_(a, b) CROWDSKY_CONCAT_IMPL_(a, b)
