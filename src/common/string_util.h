// Small string helpers shared by the CSV reader, loggers and benches.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace crowdsky {

/// Splits `input` on `delim`; keeps empty fields.
std::vector<std::string> SplitString(std::string_view input, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view input);

/// Parses a double; fails on empty/garbage/trailing characters.
Result<double> ParseDouble(std::string_view input);

/// Parses a non-negative integer; fails on empty/garbage/overflow.
Result<int64_t> ParseInt64(std::string_view input);

/// Joins items with `sep`.
std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view sep);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace crowdsky
