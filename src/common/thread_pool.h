// ThreadPool: the shared parallel substrate for CrowdSky's machine-side
// hot paths (dominance-structure construction, partition/merge skylines,
// bench sweeps).
//
// Design:
//  * work-stealing scheduling — each worker owns a deque; it pops from the
//    front of its own deque and steals from the back of a victim's, so a
//    ParallelFor whose early chunks are cheap (triangular loops) rebalances
//    automatically,
//  * a deterministic single-thread fallback — with one thread the pool
//    spawns no workers and ParallelFor degenerates to one inline call of
//    fn(begin, end) on the caller's thread, so every paper-figure output is
//    bit-identical to the historical serial code at threads=1,
//  * CROWDSKY_THREADS env override — the global pool sizes itself from
//    CROWDSKY_THREADS if set (must parse as an integer in [1, 4096];
//    anything else aborts with a clear message rather than silently
//    falling back), else std::thread::hardware_concurrency(),
//  * exception propagation — the first exception thrown by any chunk is
//    captured and rethrown on the calling thread once the loop drains,
//  * nested-call safety — a ParallelFor issued from inside a pool task runs
//    inline on that worker (no new tasks), so nested parallel code cannot
//    deadlock the fixed-size pool.
//
// Synchronization is intentionally simple (one pool mutex guarding the
// deques plus per-job atomics): tasks are coarse chunks, so queue traffic
// is negligible next to chunk execution, and the simple locking is easy to
// prove race-free under the tsan preset. The lock discipline is also
// enforced statically: the pool mutex is a capability (common/mutex.h),
// every guarded member is CROWDSKY_GUARDED_BY(mutex_), and the tsafety
// preset fails the build on any access outside the lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace crowdsky {

/// \brief Fixed-size work-stealing thread pool with a blocking ParallelFor.
class ThreadPool {
 public:
  /// Point-in-time snapshot of the pool's self-maintained activity
  /// counters. The pool keeps these itself (plain relaxed atomics) rather
  /// than linking the observability library — common sits below obs in the
  /// layering — and the engine scrapes them into the metric registry at
  /// run end. All values except `tasks_*` totals are scheduling artefacts
  /// and therefore nondeterministic across runs.
  struct StatsSnapshot {
    int64_t tasks_submitted = 0;   ///< tasks enqueued (Submit + chunks)
    int64_t tasks_executed = 0;    ///< tasks run to completion
    int64_t steals = 0;            ///< pops from a deque the popper
                                   ///< doesn't own (incl. the ParallelFor
                                   ///< caller, which owns no deque)
    int64_t parallel_fors = 0;     ///< ParallelFor calls that enqueued
                                   ///< chunks (inline degenerations not
                                   ///< counted)
    int64_t max_queue_depth = 0;   ///< high-water mark of total queued
                                   ///< (not yet popped) tasks
  };
  /// Creates a pool with `num_threads` total parallelism. `num_threads - 1`
  /// workers are spawned (the caller of ParallelFor is the remaining
  /// executor); with `num_threads <= 1` no threads are spawned at all.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  CROWDSKY_DISALLOW_COPY(ThreadPool);

  /// Total parallelism (including the calling thread), >= 1.
  int num_threads() const { return num_threads_; }

  /// Enqueues one task for asynchronous execution. Safe to call from
  /// within a running task. Exceptions thrown by `task` abort (tasks
  /// submitted this way have nowhere to rethrow); use ParallelFor for
  /// exception-propagating parallel work.
  void Submit(std::function<void()> task) CROWDSKY_EXCLUDES(mutex_);

  /// Blocks until every task submitted so far has finished.
  void WaitIdle() CROWDSKY_EXCLUDES(mutex_);

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks
  /// of at least `grain` indices, in parallel, and blocks until all chunks
  /// complete. With one thread (or a nested call from a pool worker, or a
  /// range no larger than `grain`) this is exactly one inline call
  /// fn(begin, end). Rethrows the first exception raised by any chunk.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn)
      CROWDSKY_EXCLUDES(mutex_);

  /// The process-wide pool, sized by DefaultThreads() on first use (or the
  /// latest SetGlobalThreads call).
  static ThreadPool& Global();

  /// Thread count the global pool uses when not overridden:
  /// CROWDSKY_THREADS if set, else hardware_concurrency(). A set but
  /// invalid CROWDSKY_THREADS (non-numeric, zero, negative, or absurd)
  /// aborts instead of silently picking a different count.
  static int DefaultThreads();

  /// Recreates the global pool with `num_threads` threads (0 restores
  /// DefaultThreads()). Only for tests and benchmarks; callers must ensure
  /// no parallel work is in flight.
  static void SetGlobalThreads(int num_threads);

  /// Reads the activity counters. Safe concurrently with running work
  /// (each field is an independent relaxed load, so the snapshot is not a
  /// single consistent cut; call after WaitIdle for exact totals).
  StatsSnapshot stats() const;

 private:
  struct Job;  // shared completion state of one ParallelFor

  void WorkerLoop(size_t self) CROWDSKY_EXCLUDES(mutex_);
  bool PopTask(size_t self, std::function<void()>* task)
      CROWDSKY_REQUIRES(mutex_);
  void NoteEnqueuedLocked() CROWDSKY_REQUIRES(mutex_);  // queue high-water
  /// True iff no worker is busy and every deque is empty.
  bool IdleLocked() const CROWDSKY_REQUIRES(mutex_);

  int num_threads_;
  /// Guards stop_, deques_, busy_workers_ and next_deque_. Everything else
  /// is either immutable after construction (num_threads_, workers_) or a
  /// relaxed statistic atomic.
  Mutex mutex_;
  CondVar cv_;  // workers sleep here; WaitIdle waits here too
  bool stop_ CROWDSKY_GUARDED_BY(mutex_) = false;
  std::vector<std::deque<std::function<void()>>> deques_
      CROWDSKY_GUARDED_BY(mutex_);
  /// Workers currently executing a task.
  int busy_workers_ CROWDSKY_GUARDED_BY(mutex_) = 0;
  /// Round-robin submission cursor.
  size_t next_deque_ CROWDSKY_GUARDED_BY(mutex_) = 0;
  std::vector<std::thread> workers_;

  // Activity counters (see StatsSnapshot). Relaxed: these are statistics,
  // never synchronization.
  std::atomic<int64_t> stat_submitted_{0};
  std::atomic<int64_t> stat_executed_{0};
  std::atomic<int64_t> stat_steals_{0};
  std::atomic<int64_t> stat_parallel_fors_{0};
  std::atomic<int64_t> stat_max_queue_depth_{0};
};

/// Scoped override of the global pool size; restores DefaultThreads() (the
/// env-driven size) on destruction. Test/bench helper.
class ScopedThreads {
 public:
  explicit ScopedThreads(int num_threads) {
    ThreadPool::SetGlobalThreads(num_threads);
  }
  ~ScopedThreads() { ThreadPool::SetGlobalThreads(0); }
  CROWDSKY_DISALLOW_COPY(ScopedThreads);
};

/// Convenience forwarder to ThreadPool::Global().ParallelFor.
inline void ParallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

}  // namespace crowdsky
