// Status: lightweight error propagation without exceptions, following the
// RocksDB/Arrow idiom. Functions that can fail return a Status (or a
// Result<T>, see result.h) instead of throwing.
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "common/macros.h"

namespace crowdsky {

/// Machine-readable error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kBudgetExhausted = 7,
  kContradiction = 8,
  kUnknown = 9,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Status is cheap to copy in the OK case (single pointer). Error states
/// allocate a small heap record. Use the CROWDSKY_RETURN_NOT_OK macro to
/// propagate errors up the stack.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : state_(nullptr) {}
  ~Status() { delete state_; }

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      delete state_;
      state_ = other.state_ ? new State(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&& other) noexcept : state_(other.state_) {
    other.state_ = nullptr;
  }
  Status& operator=(Status&& other) noexcept {
    std::swap(state_, other.state_);
    return *this;
  }

  /// Factory for the OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status Contradiction(std::string msg) {
    return Status(StatusCode::kContradiction, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }
  /// Error category; kOk when ok().
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  /// Error message; empty when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsBudgetExhausted() const {
    return code() == StatusCode::kBudgetExhausted;
  }
  bool IsContradiction() const {
    return code() == StatusCode::kContradiction;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process if this status is an error. Use at call sites where
  /// failure indicates a programming bug.
  void CheckOK() const {
    CROWDSKY_CHECK_MSG(ok(), ToString().c_str());
  }

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  Status(StatusCode code, std::string msg)
      : state_(new State{code, std::move(msg)}) {}

  State* state_;
};

}  // namespace crowdsky

/// Propagates a non-OK Status to the caller.
#define CROWDSKY_RETURN_NOT_OK(expr)              \
  do {                                            \
    ::crowdsky::Status _st = (expr);              \
    if (CROWDSKY_PREDICT_FALSE(!_st.ok())) {      \
      return _st;                                 \
    }                                             \
  } while (false)
