#include "common/thread_pool.h"

#include <cerrno>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/mutex.h"

namespace crowdsky {
namespace {

// True on threads that are pool workers; nested ParallelFor calls detect
// this and run inline instead of enqueuing (the fixed-size pool could not
// otherwise guarantee progress for the inner loop).
thread_local bool tls_in_pool_worker = false;

Mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool CROWDSKY_GUARDED_BY(g_pool_mutex);

}  // namespace

struct ThreadPool::Job {
  explicit Job(size_t n) : pending(n) {}
  Mutex m;
  CondVar cv;
  size_t pending CROWDSKY_GUARDED_BY(m);
  std::exception_ptr error CROWDSKY_GUARDED_BY(m);  // first chunk failure
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  const auto num_workers = static_cast<size_t>(num_threads_ - 1);
  deques_.resize(num_workers);
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  stat_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (workers_.empty()) {
    task();  // single-thread pool: synchronous, deterministic
    stat_executed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    MutexLock lock(mutex_);
    deques_[next_deque_].push_back(std::move(task));
    next_deque_ = (next_deque_ + 1) % deques_.size();
    NoteEnqueuedLocked();
  }
  cv_.NotifyOne();
}

void ThreadPool::NoteEnqueuedLocked() {
  size_t depth = 0;
  for (const auto& d : deques_) depth += d.size();
  const auto depth64 = static_cast<int64_t>(depth);
  if (depth64 > stat_max_queue_depth_.load(std::memory_order_relaxed)) {
    stat_max_queue_depth_.store(depth64, std::memory_order_relaxed);
  }
}

bool ThreadPool::IdleLocked() const {
  if (busy_workers_ != 0) return false;
  for (const auto& d : deques_) {
    if (!d.empty()) return false;
  }
  return true;
}

void ThreadPool::WaitIdle() {
  if (workers_.empty()) return;
  MutexLock lock(mutex_);
  while (!IdleLocked()) cv_.Wait(mutex_);
}

bool ThreadPool::PopTask(size_t self, std::function<void()>* task) {
  // Callers hold mutex_. Own deque first (front: LIFO-ish cache locality
  // for the owner), then steal from the back of the other deques.
  if (self < deques_.size() && !deques_[self].empty()) {
    *task = std::move(deques_[self].front());
    deques_[self].pop_front();
    return true;
  }
  const size_t n = deques_.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t victim = (self + 1 + k) % n;
    if (victim == self || deques_[victim].empty()) continue;
    *task = std::move(deques_[victim].back());
    deques_[victim].pop_back();
    stat_steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_in_pool_worker = true;
  mutex_.lock();
  while (true) {
    std::function<void()> task;
    if (PopTask(self, &task)) {
      ++busy_workers_;
      mutex_.unlock();
      task();
      stat_executed_.fetch_add(1, std::memory_order_relaxed);
      mutex_.lock();
      --busy_workers_;
      if (busy_workers_ == 0) cv_.NotifyAll();  // wake WaitIdle
      continue;
    }
    if (stop_) break;
    cv_.Wait(mutex_);
  }
  mutex_.unlock();
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  const size_t n = end - begin;
  if (grain == 0) grain = 1;
  if (num_threads_ <= 1 || n <= grain || tls_in_pool_worker) {
    fn(begin, end);
    return;
  }

  // ~4 chunks per thread so work-stealing can rebalance skewed chunks
  // (e.g. the triangular row loops of DominanceStructure).
  const auto target = static_cast<size_t>(num_threads_) * 4;
  size_t chunk = (n + target - 1) / target;
  if (chunk < grain) chunk = grain;
  const size_t num_chunks = (n + chunk - 1) / chunk;

  Job job(num_chunks);
  stat_parallel_fors_.fetch_add(1, std::memory_order_relaxed);
  stat_submitted_.fetch_add(static_cast<int64_t>(num_chunks),
                            std::memory_order_relaxed);
  const std::function<void(size_t, size_t)>* body = &fn;
  {
    MutexLock lock(mutex_);
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t b = begin + c * chunk;
      const size_t e = b + chunk < end ? b + chunk : end;
      deques_[next_deque_].emplace_back([&job, body, b, e] {
        const bool was_worker = tls_in_pool_worker;
        tls_in_pool_worker = true;  // chunks never spawn sub-chunks
        try {
          (*body)(b, e);
        } catch (...) {
          MutexLock job_lock(job.m);
          if (!job.error) job.error = std::current_exception();
        }
        tls_in_pool_worker = was_worker;
        // The decrement, notify and unlock all happen before the caller
        // can observe pending == 0 under job.m, so destroying the
        // stack-allocated Job after that observation is safe.
        MutexLock job_lock(job.m);
        if (--job.pending == 0) job.cv.NotifyAll();
      });
      next_deque_ = (next_deque_ + 1) % deques_.size();
    }
    NoteEnqueuedLocked();
  }
  cv_.NotifyAll();

  // The calling thread participates until its job drains.
  for (;;) {
    {
      MutexLock job_lock(job.m);
      if (job.pending == 0) break;
    }
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      if (!PopTask(deques_.size(), &task)) task = nullptr;
    }
    if (task) {
      task();
      stat_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Nothing runnable: the remaining chunks are in flight on workers.
    job.m.lock();
    while (job.pending != 0) job.cv.Wait(job.m);
    job.m.unlock();
    break;
  }
  std::exception_ptr error;
  {
    MutexLock job_lock(job.m);
    error = job.error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::Global() {
  MutexLock lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(DefaultThreads());
  return *g_pool;
}

int ThreadPool::DefaultThreads() {
  // getenv with no setenv anywhere in the library is data-race-free; the
  // override is process-wide config read at pool (re)creation only.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): see above
  if (const char* env = std::getenv("CROWDSKY_THREADS")) {
    // Strict parse: a typo'd override ("fast", "1.5", "0") silently
    // falling back to hardware_concurrency would be worse than failing —
    // the user believes they pinned the thread count (e.g. for the
    // bit-identical threads=1 path) and they did not.
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    CROWDSKY_CHECK_MSG(end != env && *end == '\0' && errno == 0 &&
                           v >= 1 && v <= 4096,
                       "CROWDSKY_THREADS must be an integer in [1, 4096]");
    return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::StatsSnapshot ThreadPool::stats() const {
  StatsSnapshot s;
  s.tasks_submitted = stat_submitted_.load(std::memory_order_relaxed);
  s.tasks_executed = stat_executed_.load(std::memory_order_relaxed);
  s.steals = stat_steals_.load(std::memory_order_relaxed);
  s.parallel_fors = stat_parallel_fors_.load(std::memory_order_relaxed);
  s.max_queue_depth = stat_max_queue_depth_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  MutexLock lock(g_pool_mutex);
  g_pool = std::make_unique<ThreadPool>(
      num_threads >= 1 ? num_threads : DefaultThreads());
}

}  // namespace crowdsky
