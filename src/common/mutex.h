// Capability-annotated synchronization primitives.
//
// libstdc++'s std::mutex carries no clang capability annotations, so code
// locking it is invisible to `-Wthread-safety` — the analysis cannot see
// what a std::lock_guard protects. These thin wrappers restore visibility:
//
//   * Mutex      — std::mutex annotated as a CROWDSKY_CAPABILITY, so
//                  members can be declared CROWDSKY_GUARDED_BY(mutex_) and
//                  functions CROWDSKY_REQUIRES(mutex_),
//   * MutexLock  — RAII scoped acquisition (the std::lock_guard shape),
//                  annotated CROWDSKY_SCOPED_CAPABILITY,
//   * CondVar    — std::condition_variable_any waiting directly on a held
//                  Mutex; Wait() is annotated CROWDSKY_REQUIRES(mutex).
//
// Wait loops are written out explicitly so the analysis can follow them:
//
//   MutexLock lock(mutex_);
//   while (!ReadyLocked()) cv_.Wait(mutex_);   // ReadyLocked REQUIRES(mutex_)
//
// (A predicate lambda passed into a wait function is analyzed as a
// separate unannotated function and would warn; the manual loop is the
// form the analysis understands.)
//
// The wrappers add no state and no extra locking; the CrowdSky lint rules
// CS-MTX005/CS-LCK006 reject raw std::mutex / std::lock_guard in src/ so
// every lock in the library is analyzable. This header is the single
// allowed home of the raw std types.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/macros.h"
#include "common/thread_annotations.h"

namespace crowdsky {

/// \brief std::mutex as a clang capability.
class CROWDSKY_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  CROWDSKY_DISALLOW_COPY(Mutex);

  void lock() CROWDSKY_ACQUIRE() { mu_.lock(); }
  void unlock() CROWDSKY_RELEASE() { mu_.unlock(); }
  bool try_lock() CROWDSKY_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock on a Mutex (the std::lock_guard of this codebase).
class CROWDSKY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CROWDSKY_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() CROWDSKY_RELEASE() { mutex_.unlock(); }
  CROWDSKY_DISALLOW_COPY(MutexLock);

 private:
  Mutex& mutex_;
};

/// \brief Condition variable waiting on a Mutex the caller already holds.
///
/// Built on std::condition_variable_any, which accepts any BasicLockable —
/// the internal unlock/relock during the wait happens inside the standard
/// library (a system header, exempt from the analysis), and the REQUIRES
/// annotation states the caller-visible contract: held on entry, held on
/// return.
class CondVar {
 public:
  CondVar() = default;
  CROWDSKY_DISALLOW_COPY(CondVar);

  /// Blocks until notified (spurious wakeups possible; always wait in a
  /// `while (!condition)` loop). `mutex` must be held.
  void Wait(Mutex& mutex) CROWDSKY_REQUIRES(mutex) { cv_.wait(mutex); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace crowdsky
