// Minimal leveled logging to stderr. Benches and examples use INFO; the
// library itself logs only at WARNING and above so tests stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace crowdsky {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and writes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace crowdsky

#define CROWDSKY_LOG(level)                                             \
  ::crowdsky::internal::LogMessage(::crowdsky::LogLevel::k##level,      \
                                   __FILE__, __LINE__)                  \
      .stream()
