#include "common/status.h"

namespace crowdsky {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kBudgetExhausted:
      return "Budget exhausted";
    case StatusCode::kContradiction:
      return "Contradiction";
    case StatusCode::kUnknown:
      return "Unknown";
  }
  return "Unrecognized code";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeToString(code()));
  result += ": ";
  result += message();
  return result;
}

}  // namespace crowdsky
