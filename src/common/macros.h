// Common macros used across the CrowdSky codebase.
#pragma once

#include <cstdio>
#include <cstdlib>

// Disallow copy construction/assignment for a class.
#define CROWDSKY_DISALLOW_COPY(TypeName)     \
  TypeName(const TypeName&) = delete;        \
  TypeName& operator=(const TypeName&) = delete

// Branch-prediction hints.
#define CROWDSKY_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define CROWDSKY_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))

// Internal invariant check, active in all build types. Invariant failures
// indicate a bug in CrowdSky itself (never bad user input, which is
// reported through Status).
#define CROWDSKY_CHECK(condition)                                          \
  do {                                                                     \
    if (CROWDSKY_PREDICT_FALSE(!(condition))) {                            \
      ::std::fprintf(stderr, "CROWDSKY_CHECK failed at %s:%d: %s\n",       \
                     __FILE__, __LINE__, #condition);                      \
      ::std::abort();                                                      \
    }                                                                      \
  } while (false)

#define CROWDSKY_CHECK_MSG(condition, msg)                                 \
  do {                                                                     \
    if (CROWDSKY_PREDICT_FALSE(!(condition))) {                            \
      ::std::fprintf(stderr, "CROWDSKY_CHECK failed at %s:%d: %s (%s)\n",  \
                     __FILE__, __LINE__, #condition, (msg));               \
      ::std::abort();                                                      \
    }                                                                      \
  } while (false)

// Debug-only check, compiled out in release builds.
#ifdef NDEBUG
#define CROWDSKY_DCHECK(condition) \
  do {                             \
  } while (false)
#else
#define CROWDSKY_DCHECK(condition) CROWDSKY_CHECK(condition)
#endif
