// Common macros used across the CrowdSky codebase.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Disallow copy construction/assignment for a class.
#define CROWDSKY_DISALLOW_COPY(TypeName)     \
  TypeName(const TypeName&) = delete;        \
  TypeName& operator=(const TypeName&) = delete

// Branch-prediction hints.
#define CROWDSKY_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define CROWDSKY_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))

// Internal invariant check, active in all build types. Invariant failures
// indicate a bug in CrowdSky itself (never bad user input, which is
// reported through Status).
#define CROWDSKY_CHECK(condition)                                          \
  do {                                                                     \
    if (CROWDSKY_PREDICT_FALSE(!(condition))) {                            \
      ::std::fprintf(stderr, "CROWDSKY_CHECK failed at %s:%d: %s\n",       \
                     __FILE__, __LINE__, #condition);                      \
      ::std::abort();                                                      \
    }                                                                      \
  } while (false)

#define CROWDSKY_CHECK_MSG(condition, msg)                                 \
  do {                                                                     \
    if (CROWDSKY_PREDICT_FALSE(!(condition))) {                            \
      ::std::fprintf(stderr, "CROWDSKY_CHECK failed at %s:%d: %s (%s)\n",  \
                     __FILE__, __LINE__, #condition, (msg));               \
      ::std::abort();                                                      \
    }                                                                      \
  } while (false)

namespace crowdsky::internal {

// Streams both operands of a failed CROWDSKY_CHECK_xx so the abort message
// shows the values, not just the expression text.
template <typename A, typename B>
std::string FormatCheckOperands(const A& a, const B& b) {
  std::ostringstream oss;
  oss << a << " vs. " << b;
  return oss.str();
}

}  // namespace crowdsky::internal

// Binary invariant checks with value printing, e.g.
//   CROWDSKY_CHECK_EQ(rounds, per_round.size());
// aborts with "... CROWDSKY_CHECK_EQ failed at f.cc:12: rounds ==
// per_round.size() (3 vs. 4)". Operands must be streamable and comparable
// without implicit-conversion warnings (cast explicitly as elsewhere in
// the codebase).
#define CROWDSKY_CHECK_OP_IMPL(name, op, a, b)                              \
  do {                                                                      \
    const auto& crowdsky_check_lhs = (a);                                   \
    const auto& crowdsky_check_rhs = (b);                                   \
    if (CROWDSKY_PREDICT_FALSE(                                             \
            !(crowdsky_check_lhs op crowdsky_check_rhs))) {                 \
      ::std::fprintf(stderr, "%s failed at %s:%d: %s %s %s (%s)\n", name,   \
                     __FILE__, __LINE__, #a, #op, #b,                       \
                     ::crowdsky::internal::FormatCheckOperands(             \
                         crowdsky_check_lhs, crowdsky_check_rhs)            \
                         .c_str());                                         \
      ::std::abort();                                                       \
    }                                                                       \
  } while (false)

#define CROWDSKY_CHECK_EQ(a, b) \
  CROWDSKY_CHECK_OP_IMPL("CROWDSKY_CHECK_EQ", ==, a, b)
#define CROWDSKY_CHECK_NE(a, b) \
  CROWDSKY_CHECK_OP_IMPL("CROWDSKY_CHECK_NE", !=, a, b)
#define CROWDSKY_CHECK_LT(a, b) \
  CROWDSKY_CHECK_OP_IMPL("CROWDSKY_CHECK_LT", <, a, b)
#define CROWDSKY_CHECK_LE(a, b) \
  CROWDSKY_CHECK_OP_IMPL("CROWDSKY_CHECK_LE", <=, a, b)
#define CROWDSKY_CHECK_GT(a, b) \
  CROWDSKY_CHECK_OP_IMPL("CROWDSKY_CHECK_GT", >, a, b)
#define CROWDSKY_CHECK_GE(a, b) \
  CROWDSKY_CHECK_OP_IMPL("CROWDSKY_CHECK_GE", >=, a, b)

// Debug-only check, compiled out in release builds.
#ifdef NDEBUG
#define CROWDSKY_DCHECK(condition) \
  do {                             \
  } while (false)
#else
#define CROWDSKY_DCHECK(condition) CROWDSKY_CHECK(condition)
#endif
