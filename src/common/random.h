// Deterministic pseudo-random number generation.
//
// All randomized components of CrowdSky (data generators, simulated
// workers, the accuracy experiments) take an explicit seed so that every
// experiment in the paper reproduction is bit-for-bit repeatable. We use
// xoshiro256++ seeded via SplitMix64, which is both faster and has better
// statistical behaviour than std::mt19937 while keeping the header light.
#pragma once

#include <cstdint>

#include "common/macros.h"

namespace crowdsky {

/// SplitMix64 step; used for seeding and for cheap hash mixing.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256++ pseudo-random generator with convenience samplers.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also drive
/// <random> distributions if needed.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed (any value is fine,
  /// including zero).
  explicit Rng(uint64_t seed = 0xc0ffee123456789ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) {
      word = SplitMix64(&sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    CROWDSKY_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound); bound must be positive.
  uint64_t NextBounded(uint64_t bound) {
    CROWDSKY_DCHECK(bound > 0);
    // Lemire's nearly-divisionless method with rejection for exactness.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    CROWDSKY_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Standard normal sample (Marsaglia polar method).
  double NextGaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = __builtin_sqrt(-2.0 * __builtin_log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Normal sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Derives an independent child generator; useful to give each
  /// subsystem its own stream from one experiment seed.
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace crowdsky
