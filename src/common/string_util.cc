#include "common/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace crowdsky {

std::vector<std::string> SplitString(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view input) {
  const char* kWs = " \t\r\n\f\v";
  const size_t begin = input.find_first_not_of(kWs);
  if (begin == std::string_view::npos) return {};
  const size_t end = input.find_last_not_of(kWs);
  return input.substr(begin, end - begin + 1);
}

Result<double> ParseDouble(std::string_view input) {
  const std::string buf(TrimWhitespace(input));
  if (buf.empty()) {
    return Status::InvalidArgument("cannot parse empty string as double");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in double: '" + buf +
                                   "'");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view input) {
  const std::string buf(TrimWhitespace(input));
  if (buf.empty()) {
    return Status::InvalidArgument("cannot parse empty string as int64");
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("int64 out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in int64: '" + buf +
                                   "'");
  }
  return static_cast<int64_t>(value);
}

std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace crowdsky
