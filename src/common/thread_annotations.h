// Clang thread-safety (capability) annotation macros.
//
// These wrap clang's `-Wthread-safety` attributes so that CrowdSky's lock
// discipline — which mutex guards which state, which functions must (or
// must not) be called with a lock held — lives in the type system instead
// of in comments. The `tsafety` CMake preset compiles the tree with clang
// and `-Werror=thread-safety`, turning every violation into a build error;
// under GCC (the default toolchain) every macro expands to nothing.
//
// Usage pattern (see common/mutex.h for the annotated Mutex/MutexLock/
// CondVar types every concurrent subsystem uses):
//
//   class Inbox {
//     void Push(Item item) CROWDSKY_EXCLUDES(mutex_);   // acquires inside
//    private:
//     bool HasWorkLocked() const CROWDSKY_REQUIRES(mutex_);
//     Mutex mutex_;
//     std::deque<Item> items_ CROWDSKY_GUARDED_BY(mutex_);
//   };
//
// The macro set mirrors the canonical mutex.h example in the clang
// documentation (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html),
// renamed into the CROWDSKY_ namespace.
#pragma once

#if defined(__clang__)
#define CROWDSKY_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CROWDSKY_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Marks a class as a capability (lockable) type; `x` is the capability
/// kind shown in diagnostics, e.g. "mutex".
#define CROWDSKY_CAPABILITY(x) CROWDSKY_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (MutexLock).
#define CROWDSKY_SCOPED_CAPABILITY CROWDSKY_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define CROWDSKY_GUARDED_BY(x) CROWDSKY_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// is not).
#define CROWDSKY_PT_GUARDED_BY(x) CROWDSKY_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may only be called while holding the listed capabilities; it
/// does not acquire or release them.
#define CROWDSKY_REQUIRES(...) \
  CROWDSKY_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define CROWDSKY_ACQUIRE(...) \
  CROWDSKY_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (which must be held on entry).
#define CROWDSKY_RELEASE(...) \
  CROWDSKY_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; `__VA_ARGS__` starts with
/// the boolean return value meaning "acquired".
#define CROWDSKY_TRY_ACQUIRE(...) \
  CROWDSKY_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the listed capabilities
/// (it acquires them itself; documents non-reentrancy and prevents
/// self-deadlock at compile time).
#define CROWDSKY_EXCLUDES(...) \
  CROWDSKY_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the calling thread holds the capability and
/// tells the analysis to assume it from here on.
#define CROWDSKY_ASSERT_CAPABILITY(x) \
  CROWDSKY_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the capability `x` (accessor pattern).
#define CROWDSKY_RETURN_CAPABILITY(x) \
  CROWDSKY_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the function is safe.
#define CROWDSKY_NO_THREAD_SAFETY_ANALYSIS \
  CROWDSKY_THREAD_ANNOTATION_(no_thread_safety_analysis)
