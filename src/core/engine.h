// Public entry point of the CrowdSky library.
//
// Typical use:
//   Dataset data = ...;                       // crowd attrs hold ground truth
//   EngineOptions opts;
//   opts.algorithm = Algorithm::kParallelSL;
//   opts.worker.p_correct = 0.8;
//   Result<EngineResult> r = RunSkylineQuery(data, opts);
//
// The engine builds the dominance structure, wires a (simulated) crowd
// oracle with the selected voting policy through a cached session, runs
// the requested algorithm, and reports the skyline together with monetary
// cost, latency (rounds) and accuracy.
#pragma once

#include <string>
#include <vector>

#include "algo/metrics.h"
#include "algo/run_result.h"
#include "common/result.h"
#include "crowd/cost_model.h"
#include "crowd/marketplace.h"
#include "crowd/worker_model.h"
#include "data/dataset.h"

namespace crowdsky {

/// The crowd-enabled skyline algorithms shipped by this library.
enum class Algorithm {
  kBaselineSort,   ///< tournament-sort baseline (Section 3 / Figures 6-9)
  kBitonicSort,    ///< bitonic-network baseline (extension)
  kCrowdSkySerial, ///< Algorithm 1, one question per round
  kParallelDSet,   ///< Section 4.1 partitioning
  kParallelSL,     ///< Algorithm 2, skyline layers (recommended default)
  kUnary,          ///< unary-question method of [12] (accuracy comparison)
};

/// Stable display name ("Baseline", "CrowdSky", ...).
const char* AlgorithmName(Algorithm a);

/// Which oracle answers the questions.
enum class OracleKind {
  kPerfect,      ///< always-correct answers (cost/latency experiments)
  kSimulated,    ///< Bernoulli workers + majority voting (accuracy experiments)
  kMarketplace,  ///< persistent worker pool with qualification (Section 6.2)
};

/// Everything configurable about one engine run.
struct EngineOptions {
  Algorithm algorithm = Algorithm::kParallelSL;
  CrowdSkyOptions crowdsky;

  OracleKind oracle = OracleKind::kSimulated;
  WorkerModel worker;
  /// ω: base number of workers per question (positive odd).
  int workers_per_question = 5;
  /// Use the dynamic (query-dependent) voting of Section 5.
  bool dynamic_voting = false;
  uint64_t seed = 42;

  /// Hard cap on paid questions (0 = unlimited). Supported by the
  /// CrowdSky-family algorithms, which then return a best-effort skyline —
  /// undecided tuples stay in the result and are counted in
  /// AlgoResult::incomplete_tuples (the fixed-budget setting of [12]).
  int64_t max_questions = 0;

  /// Platform configuration used when `oracle` is kMarketplace (its
  /// population model; `worker` above is ignored in that case, and the
  /// marketplace pool is seeded from `seed`). Fault injection
  /// (marketplace.faults) requires kMarketplace and a CrowdSky-family
  /// algorithm — the sort baselines and the unary method have no degraded
  /// path for an unresolved question.
  MarketplaceOptions marketplace;

  /// How the session retries failed question attempts (no-ops unless the
  /// oracle can fail, i.e. a marketplace with a fault plan).
  RetryPolicy retry;

  AmtCostModel cost_model;
};

/// Output of one engine run.
struct EngineResult {
  AlgoResult algo;
  /// Labels of the skyline tuples (empty strings when unlabeled).
  std::vector<std::string> skyline_labels;
  /// Accuracy vs the hidden ground truth.
  AccuracyMetrics accuracy;
  /// Monetary cost under the configured AMT model.
  double cost_usd = 0.0;
};

/// Runs a crowd-enabled skyline query. Fails on invalid options (no crowd
/// attribute, even worker count, ...).
Result<EngineResult> RunSkylineQuery(const Dataset& dataset,
                                     const EngineOptions& options = {});

}  // namespace crowdsky
