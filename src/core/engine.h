// Public entry point of the CrowdSky library.
//
// Typical use:
//   Dataset data = ...;                       // crowd attrs hold ground truth
//   EngineOptions opts;
//   opts.algorithm = Algorithm::kParallelSL;
//   opts.worker.p_correct = 0.8;
//   Result<EngineResult> r = RunSkylineQuery(data, opts);
//
// The engine builds the dominance structure, wires a (simulated) crowd
// oracle with the selected voting policy through a cached session, runs
// the requested algorithm, and reports the skyline together with monetary
// cost, latency (rounds) and accuracy.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algo/metrics.h"
#include "algo/run_result.h"
#include "common/result.h"
#include "core/governor.h"
#include "crowd/cost_model.h"
#include "crowd/marketplace.h"
#include "crowd/question.h"
#include "crowd/worker_model.h"
#include "data/dataset.h"
#include "obs/observer.h"
#include "persist/journal.h"

namespace crowdsky {

/// The crowd-enabled skyline algorithms shipped by this library.
enum class Algorithm {
  kBaselineSort,   ///< tournament-sort baseline (Section 3 / Figures 6-9)
  kBitonicSort,    ///< bitonic-network baseline (extension)
  kCrowdSkySerial, ///< Algorithm 1, one question per round
  kParallelDSet,   ///< Section 4.1 partitioning
  kParallelSL,     ///< Algorithm 2, skyline layers (recommended default)
  kUnary,          ///< unary-question method of [12] (accuracy comparison)
};

/// Stable display name ("Baseline", "CrowdSky", ...).
const char* AlgorithmName(Algorithm a);

/// Inverse of AlgorithmName (exact match); fails on unknown names. Used by
/// out-of-process callers (shard children) that receive the algorithm as a
/// spec-file string.
Result<Algorithm> ParseAlgorithm(const std::string& name);

/// A resolved crowd answer carried into a run from outside — e.g. a shard's
/// exported answers seeding the distributed merge so cross-shard validation
/// only pays for pairs no shard has already resolved. Tuple ids refer to
/// the dataset *this* run sees.
struct ImportedAnswer {
  int attr = 0;
  int u = -1;
  int v = -1;
  Answer answer = Answer::kEqual;
};

/// Which oracle answers the questions.
enum class OracleKind {
  kPerfect,      ///< always-correct answers (cost/latency experiments)
  kSimulated,    ///< Bernoulli workers + majority voting (accuracy experiments)
  kMarketplace,  ///< persistent worker pool with qualification (Section 6.2)
};

/// Everything configurable about one engine run.
struct EngineOptions {
  Algorithm algorithm = Algorithm::kParallelSL;
  CrowdSkyOptions crowdsky;

  OracleKind oracle = OracleKind::kSimulated;
  WorkerModel worker;
  /// ω: base number of workers per question (positive odd).
  int workers_per_question = 5;
  /// Use the dynamic (query-dependent) voting of Section 5.
  bool dynamic_voting = false;
  uint64_t seed = 42;

  /// Hard cap on paid questions (0 = unlimited). Supported by the
  /// CrowdSky-family algorithms, which then return a best-effort skyline —
  /// undecided tuples stay in the result and are counted in
  /// AlgoResult::incomplete_tuples (the fixed-budget setting of [12]).
  int64_t max_questions = 0;

  /// Platform configuration used when `oracle` is kMarketplace (its
  /// population model; `worker` above is ignored in that case, and the
  /// marketplace pool is seeded from `seed`). Fault injection
  /// (marketplace.faults) requires kMarketplace and a CrowdSky-family
  /// algorithm — the sort baselines and the unary method have no degraded
  /// path for an unresolved question.
  MarketplaceOptions marketplace;

  /// How the session retries failed question attempts (no-ops unless the
  /// oracle can fail, i.e. a marketplace with a fault plan).
  RetryPolicy retry;

  AmtCostModel cost_model;

  /// Answers resolved elsewhere (another shard, a previous run over the
  /// same ground truth) seeded into the session cache before the algorithm
  /// starts. Seeded pairs are answered for free; only unseeded pairs reach
  /// the oracle. CrowdSky-family only, and part of the run fingerprint —
  /// imports shape the question stream, so a resume must import the same
  /// set. Entries must be mutually consistent (no contradicting duplicates).
  /// Durability for importing runs is journal-only (no checkpoints): seeded
  /// answers are consulted for free at points the journal cannot record, so
  /// only a full replay reconstructs the run exactly.
  std::vector<ImportedAnswer> imported_answers;

  /// Invoked after every closed crowd round with the total rounds closed so
  /// far. Out-of-process progress reporting hook (shard heartbeats) and the
  /// multi-query service's round barrier; must not touch the session (it
  /// may block). Excluded from the fingerprint.
  std::function<void(int64_t)> round_callback;

  /// Dispatch seam for the multi-query service (src/service): when set,
  /// the engine hands the oracle it just built to this hook and talks to
  /// the returned wrapper instead. The wrapper must be *transparent* —
  /// forward every call to the inner oracle unchanged, in order, and
  /// mirror its stats — so the run stays bit-identical to an unwrapped
  /// run; it may additionally observe each paid attempt (that is how the
  /// service's HitPacker assigns cross-query HIT slots and routes answers
  /// back to the asking query). Excluded from the fingerprint for the
  /// same reason round_callback is: pure observation.
  std::function<std::unique_ptr<CrowdOracle>(std::unique_ptr<CrowdOracle>)>
      wrap_oracle;

  /// Fill EngineResult::exported_answers with every resolved pair answer in
  /// the session cache (canonical orientation, sorted). Off by default: the
  /// export is O(answers) extra copying nobody reads in a plain run. Purely
  /// observational, so excluded from the fingerprint.
  bool export_answers = false;

  /// Run governor (src/core/governor.h): round cap, dollar cap on the
  /// paper's cost formula, stall watchdog, cooperative cancellation, and
  /// an opt-in wall-clock deadline. Default-constructed = disabled, and
  /// the run is byte-identical to an ungoverned engine. Only the
  /// CrowdSky-family algorithms support governing (they are the ones with
  /// a degraded path for unfinished work). Deliberately excluded from the
  /// run fingerprint: a capped run must be resumable under a larger cap.
  GovernorOptions governor;

  /// Crash safety (src/persist): with a journal directory set, every
  /// resolved crowd answer is written to an append-only, checksummed
  /// journal before the algorithm acts on it, and driver progress is
  /// periodically checkpointed. A killed run resumes with `resume = true`:
  /// already-paid questions replay from the journal (nothing is re-paid),
  /// completed work is skipped via the checkpoint, and the final result
  /// is bit-identical to an uninterrupted run.
  struct DurabilityOptions {
    /// Directory for journal.bin / checkpoint.bin. Empty = durability off.
    std::string dir;
    /// Resume from the journal already in `dir` (fails if none exists or
    /// it was written by a different configuration); false starts fresh,
    /// truncating any previous journal in the directory.
    bool resume = false;
    /// Per-record durability (flush survives process death — enough for
    /// the kill-point tests; fsync also survives machine crashes).
    persist::SyncMode sync = persist::SyncMode::kFlush;
    /// At a quiescent driver point, write a checkpoint if at least this
    /// many crowd rounds closed since the last one. Non-positive disables
    /// checkpoints (journal-only durability; resume then replays the
    /// whole run through the answer cache). Cadence and sync mode are
    /// excluded from the config fingerprint, so they may differ between
    /// the original run and the resume.
    int checkpoint_every_rounds = 8;
  };
  DurabilityOptions durability;

  /// Observability (src/obs). Off by default: with level kDisabled no
  /// observer exists, every instrumented path reduces to a null check, and
  /// the run is bit-identical to an un-instrumented engine. kCounters
  /// collects the deterministic metric catalog (see DESIGN.md); kFull adds
  /// wall-clock TraceSpans. Counter values never feed back into the
  /// computation, so enabling observability cannot change any
  /// deterministic output either.
  struct ObsOptions {
    obs::ObsLevel level = obs::ObsLevel::kDisabled;
    /// Write a Chrome trace-event JSON (chrome://tracing, Perfetto) here
    /// at the end of the run. Requires level kFull.
    std::string trace_path;
    /// Write a Prometheus text-format metrics dump here at the end of the
    /// run. Requires level kCounters or kFull.
    std::string metrics_path;
  };
  ObsOptions obs;
};

/// Output of one engine run.
struct EngineResult {
  AlgoResult algo;
  /// Labels of the skyline tuples (empty strings when unlabeled).
  std::vector<std::string> skyline_labels;
  /// Accuracy vs the hidden ground truth.
  AccuracyMetrics accuracy;
  /// Monetary cost under the configured AMT model.
  double cost_usd = 0.0;

  /// Every resolved pair answer in the session cache at the end of the run
  /// (canonical orientation, sorted by attr/first/second; includes seeded
  /// imports). Empty unless EngineOptions::export_answers — the feed for a
  /// distributed merge that must not re-pay a shard's questions.
  std::vector<ImportedAnswer> exported_answers;

  /// What the durability subsystem did during this run (all-default when
  /// EngineOptions::durability.dir was empty).
  struct DurabilityInfo {
    bool enabled = false;
    bool resumed = false;
    /// A consistent checkpoint let the driver skip completed work.
    bool used_checkpoint = false;
    /// The crash left a half-written record that recovery truncated.
    bool recovered_torn_tail = false;
    /// The journal ended in a governor-termination epilogue that recovery
    /// truncated so this run could extend the partial result.
    bool truncated_termination = false;
    /// Paid pair attempts / unary questions answered from the journal
    /// instead of the oracle (0 on a fresh run).
    int64_t replayed_pair_attempts = 0;
    int64_t replayed_unary_questions = 0;
    /// Records in the journal when the run finished / appended by it.
    int64_t journal_records = 0;
    int64_t new_records = 0;
  };
  DurabilityInfo durability;

  /// What the observability layer recorded (all-default when
  /// EngineOptions::obs.level was kDisabled). `counters` and `gauges` are
  /// sorted by name; histograms appear flattened as `<name>_count` /
  /// `<name>_sum` counter samples. The `crowdsky.*` and `journal.*`
  /// counters are deterministic (the invariant auditor proves them equal
  /// to the session/journal ledgers when auditing is on); `pool.*` values
  /// and `trace_events` depend on scheduling and wall clock.
  struct ObsInfo {
    bool enabled = false;
    bool tracing = false;
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    int64_t trace_events = 0;

    /// The value of one counter sample, or -1 if absent (no counter in
    /// the catalog can legitimately be negative).
    int64_t CounterOr(const std::string& name, int64_t missing = -1) const {
      for (const auto& [n, v] : counters) {
        if (n == name) return v;
      }
      return missing;
    }
  };
  ObsInfo obs;
};

/// The run-configuration fingerprint stamped into journals and
/// checkpoints: a stable hash of the dataset contents and every option
/// that affects the question/answer stream (the audit flag, the
/// durability options themselves and the governor are deliberately
/// excluded — a resume may e.g. turn auditing on, change the checkpoint
/// cadence, or raise a dollar/round cap to extend a terminated run). A
/// resume whose fingerprint differs from the journal's is refused.
uint64_t RunFingerprint(const Dataset& dataset, const EngineOptions& options);

/// Runs a crowd-enabled skyline query. Fails on invalid options (no crowd
/// attribute, even worker count, ...).
Result<EngineResult> RunSkylineQuery(const Dataset& dataset,
                                     const EngineOptions& options = {});

}  // namespace crowdsky
