// Umbrella header: include this to get the whole public CrowdSky API.
#pragma once

#include "algo/baseline_sort.h"        // IWYU pragma: export
#include "algo/crowdsky_algorithm.h"   // IWYU pragma: export
#include "algo/metrics.h"              // IWYU pragma: export
#include "algo/parallel_dset.h"        // IWYU pragma: export
#include "algo/parallel_sl.h"          // IWYU pragma: export
#include "algo/unary.h"                // IWYU pragma: export
#include "audit/invariant_auditor.h"   // IWYU pragma: export
#include "common/result.h"             // IWYU pragma: export
#include "common/status.h"             // IWYU pragma: export
#include "core/engine.h"               // IWYU pragma: export
#include "crowd/cost_model.h"          // IWYU pragma: export
#include "crowd/marketplace.h"         // IWYU pragma: export
#include "crowd/oracle.h"              // IWYU pragma: export
#include "crowd/session.h"             // IWYU pragma: export
#include "crowd/voting.h"              // IWYU pragma: export
#include "data/csv.h"                  // IWYU pragma: export
#include "data/generator.h"            // IWYU pragma: export
#include "data/real_datasets.h"        // IWYU pragma: export
#include "data/toy.h"                  // IWYU pragma: export
#include "skyline/algorithms.h"        // IWYU pragma: export
#include "skyline/dominance_structure.h"  // IWYU pragma: export
