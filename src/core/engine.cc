#include "core/engine.h"

#include <memory>

#include "algo/baseline_sort.h"
#include "algo/crowdsky_algorithm.h"
#include "algo/parallel_dset.h"
#include "algo/parallel_sl.h"
#include "algo/unary.h"
#include "common/random.h"
#include "crowd/oracle.h"
#include "crowd/session.h"
#include "crowd/voting.h"
#include "skyline/dominance_structure.h"

namespace crowdsky {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kBaselineSort:
      return "Baseline";
    case Algorithm::kBitonicSort:
      return "Bitonic";
    case Algorithm::kCrowdSkySerial:
      return "CrowdSky";
    case Algorithm::kParallelDSet:
      return "ParallelDSet";
    case Algorithm::kParallelSL:
      return "ParallelSL";
    case Algorithm::kUnary:
      return "Unary";
  }
  return "?";
}

Result<EngineResult> RunSkylineQuery(const Dataset& dataset,
                                     const EngineOptions& options) {
  if (dataset.schema().num_crowd() == 0) {
    return Status::InvalidArgument(
        "dataset has no crowd attribute; use a machine-only skyline "
        "algorithm instead");
  }
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (options.workers_per_question < 1 ||
      options.workers_per_question % 2 == 0) {
    return Status::InvalidArgument(
        "workers_per_question must be positive and odd");
  }
  if (options.dynamic_voting && options.workers_per_question < 3) {
    return Status::InvalidArgument(
        "dynamic voting needs at least 3 base workers");
  }
  if (options.max_questions < 0) {
    return Status::InvalidArgument("max_questions must be non-negative");
  }
  const bool crowdsky_family =
      options.algorithm == Algorithm::kCrowdSkySerial ||
      options.algorithm == Algorithm::kParallelDSet ||
      options.algorithm == Algorithm::kParallelSL;
  if (options.max_questions > 0 && !crowdsky_family) {
    return Status::InvalidArgument(
        "question budgets are only supported by the CrowdSky-family "
        "algorithms (the sort baselines and the unary method need their "
        "full question sets)");
  }
  if (options.marketplace.faults.enabled()) {
    if (options.oracle != OracleKind::kMarketplace) {
      return Status::InvalidArgument(
          "fault injection requires the marketplace oracle");
    }
    if (!crowdsky_family) {
      return Status::InvalidArgument(
          "fault injection is only supported by the CrowdSky-family "
          "algorithms (the sort baselines and the unary method have no "
          "degraded path for an unresolved question)");
    }
  }

  const DominanceStructure structure(PreferenceMatrix::FromKnown(dataset));

  std::unique_ptr<CrowdOracle> oracle;
  if (options.oracle == OracleKind::kPerfect) {
    oracle = std::make_unique<PerfectOracle>(dataset);
  } else {
    Rng rng(options.seed);
    const VotingPolicy voting =
        options.dynamic_voting
            ? VotingPolicy::MakeDynamic(options.workers_per_question,
                                        structure, &rng)
            : VotingPolicy::MakeStatic(options.workers_per_question);
    if (options.oracle == OracleKind::kMarketplace) {
      MarketplaceOptions market = options.marketplace;
      market.seed = rng.Next();
      oracle =
          std::make_unique<CrowdMarketplace>(dataset, market, voting);
    } else {
      oracle = std::make_unique<SimulatedCrowd>(dataset, options.worker,
                                                voting, rng.Next());
    }
  }
  CrowdSession session(oracle.get());
  if (options.max_questions > 0) {
    session.SetQuestionBudget(options.max_questions);
  }
  session.SetRetryPolicy(options.retry);

  EngineResult result;
  switch (options.algorithm) {
    case Algorithm::kBaselineSort:
      result.algo = RunBaselineSort(dataset, &session);
      break;
    case Algorithm::kBitonicSort:
      result.algo = RunBitonicBaseline(dataset, &session);
      break;
    case Algorithm::kCrowdSkySerial:
      result.algo =
          RunCrowdSky(dataset, structure, &session, options.crowdsky);
      break;
    case Algorithm::kParallelDSet:
      result.algo =
          RunParallelDSet(dataset, structure, &session, options.crowdsky);
      break;
    case Algorithm::kParallelSL:
      result.algo =
          RunParallelSL(dataset, structure, &session, options.crowdsky);
      break;
    case Algorithm::kUnary:
      result.algo = RunUnary(dataset, &session);
      break;
  }

  result.skyline_labels.reserve(result.algo.skyline.size());
  for (const int id : result.algo.skyline) {
    result.skyline_labels.push_back(dataset.tuple(id).label);
  }
  result.accuracy = EvaluateNewSkylineAccuracy(dataset, result.algo.skyline);
  AmtCostModel cost = options.cost_model;
  cost.workers_per_question = options.workers_per_question;
  result.cost_usd = cost.Cost(result.algo.questions_per_round);
  return result;
}

}  // namespace crowdsky
