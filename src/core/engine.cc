#include "core/engine.h"

#include <cstring>
#include <filesystem>
#include <memory>
#include <utility>

#include "algo/baseline_sort.h"
#include "algo/crowdsky_algorithm.h"
#include "algo/parallel_dset.h"
#include "algo/parallel_sl.h"
#include "algo/unary.h"
#include "audit/invariant_auditor.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "crowd/oracle.h"
#include "crowd/session.h"
#include "crowd/voting.h"
#include "obs/observer.h"
#include "persist/checkpoint.h"
#include "persist/recovery.h"
#include "skyline/dominance_structure.h"

namespace crowdsky {
namespace {

/// Order-sensitive SplitMix64 chain for the run-configuration fingerprint.
struct Fingerprinter {
  uint64_t hash = 0xcbf29ce484222325ULL;

  void Add(uint64_t v) {
    uint64_t state = hash ^ v;
    hash = SplitMix64(&state);
  }
  void AddI(int64_t v) { Add(static_cast<uint64_t>(v)); }
  void AddF(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    Add(bits);
  }
  void AddB(bool v) { Add(v ? 1 : 0); }
};

/// The engine-side DriverCheckpointHook: at each quiescent driver point,
/// write a checkpoint if enough rounds closed since the last one. The
/// journal is synced first so the checkpoint never references records
/// that are not durable yet.
class EngineCheckpointer : public DriverCheckpointHook {
 public:
  EngineCheckpointer(std::string path, uint64_t fingerprint, int num_tuples,
                     int every_rounds, CrowdSession* session,
                     const RunGovernor* governor)
      : path_(std::move(path)),
        fingerprint_(fingerprint),
        num_tuples_(num_tuples),
        every_rounds_(every_rounds),
        session_(session),
        governor_(governor) {}

  void MaybeCheckpoint(const CompletionState& completion,
                       const std::vector<int>& skyline,
                       const std::vector<int>& undetermined,
                       int64_t free_lookups,
                       const std::vector<int>& pending) override {
    CROWDSKY_CHECK_MSG(session_->open_round_questions() == 0,
                       "drivers must only offer checkpoints at quiescent "
                       "points (no open crowd round)");
    const int64_t rounds = session_->stats().rounds;
    // A governor stop overrides the cadence: the terminated run leaves a
    // checkpoint at its final quiescent point (once — the guard below
    // keeps repeated post-stop offers from rewriting an identical file).
    const bool force = governor_ != nullptr && governor_->stopped() &&
                       rounds > last_checkpoint_rounds_;
    if (!force && rounds - last_checkpoint_rounds_ < every_rounds_) return;
    persist::JournalWriter* journal = session_->journal();
    CROWDSKY_CHECK(journal != nullptr);
    journal->Sync().CheckOK();
    persist::CheckpointData data;
    data.fingerprint = fingerprint_;
    data.journal_records = session_->journal_position();
    data.num_tuples = num_tuples_;
    data.complete.resize(static_cast<size_t>(num_tuples_));
    data.nonskyline.resize(static_cast<size_t>(num_tuples_));
    for (int t = 0; t < num_tuples_; ++t) {
      const size_t i = static_cast<size_t>(t);
      data.complete[i] = completion.complete.Test(i) ? 1 : 0;
      data.nonskyline[i] = completion.nonskyline.Test(i) ? 1 : 0;
    }
    data.skyline.assign(skyline.begin(), skyline.end());
    data.undetermined.assign(undetermined.begin(), undetermined.end());
    data.pending.assign(pending.begin(), pending.end());
    data.free_lookups = free_lookups;
    data.cache_hits = session_->stats().cache_hits;
    persist::WriteCheckpoint(path_, data).CheckOK();
    last_checkpoint_rounds_ = rounds;
  }

 private:
  std::string path_;
  uint64_t fingerprint_;
  int num_tuples_;
  int64_t every_rounds_;
  CrowdSession* session_;
  const RunGovernor* governor_;
  int64_t last_checkpoint_rounds_ = 0;
};

}  // namespace

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kBaselineSort:
      return "Baseline";
    case Algorithm::kBitonicSort:
      return "Bitonic";
    case Algorithm::kCrowdSkySerial:
      return "CrowdSky";
    case Algorithm::kParallelDSet:
      return "ParallelDSet";
    case Algorithm::kParallelSL:
      return "ParallelSL";
    case Algorithm::kUnary:
      return "Unary";
  }
  return "?";
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  for (const Algorithm a :
       {Algorithm::kBaselineSort, Algorithm::kBitonicSort,
        Algorithm::kCrowdSkySerial, Algorithm::kParallelDSet,
        Algorithm::kParallelSL, Algorithm::kUnary}) {
    if (name == AlgorithmName(a)) return a;
  }
  return Status::InvalidArgument("unknown algorithm name '" + name + "'");
}

uint64_t RunFingerprint(const Dataset& dataset,
                        const EngineOptions& options) {
  Fingerprinter fp;
  // Dataset: shape and every value (crowd values are the hidden ground
  // truth the oracle answers from, so they are part of the run identity).
  fp.AddI(dataset.size());
  fp.AddI(dataset.schema().num_known());
  fp.AddI(dataset.schema().num_crowd());
  for (const Tuple& t : dataset.tuples()) {
    for (const double v : t.values) fp.AddF(v);
  }
  // Everything that shapes the question/answer stream. The audit flag and
  // the durability options are deliberately left out (see header).
  fp.AddI(static_cast<int>(options.algorithm));
  fp.AddI(static_cast<int>(options.oracle));
  fp.AddF(options.worker.p_correct);
  fp.AddF(options.worker.p_stddev);
  fp.AddF(options.worker.spammer_fraction);
  fp.AddF(options.worker.unary_sigma);
  fp.AddI(options.workers_per_question);
  fp.AddB(options.dynamic_voting);
  fp.Add(options.seed);
  fp.AddI(options.max_questions);
  fp.AddI(options.marketplace.pool_size);
  fp.AddF(options.marketplace.population.p_correct);
  fp.AddF(options.marketplace.population.p_stddev);
  fp.AddF(options.marketplace.population.spammer_fraction);
  fp.AddF(options.marketplace.population.unary_sigma);
  fp.AddI(options.marketplace.gold_questions);
  fp.AddF(options.marketplace.qualification_threshold);
  fp.AddB(options.marketplace.weighted_votes);
  fp.AddF(options.marketplace.faults.transient_error_rate);
  fp.AddF(options.marketplace.faults.hit_expiration_rate);
  fp.AddI(options.marketplace.faults.hit_expiration_rounds);
  fp.AddF(options.marketplace.faults.worker_no_show_rate);
  fp.AddF(options.marketplace.faults.straggler_rate);
  fp.AddI(options.marketplace.faults.straggler_delay_rounds);
  fp.Add(options.marketplace.seed);
  fp.AddI(options.retry.max_retries);
  fp.AddI(options.retry.backoff_base_rounds);
  fp.AddI(options.retry.max_backoff_rounds);
  fp.AddB(options.crowdsky.pruning.use_p1);
  fp.AddB(options.crowdsky.pruning.use_p2);
  fp.AddB(options.crowdsky.pruning.use_p3);
  fp.AddB(options.crowdsky.pruning.use_completion_break);
  fp.AddB(options.crowdsky.pruning.use_transitivity);
  fp.AddI(static_cast<int>(options.crowdsky.contradiction_policy));
  fp.AddI(static_cast<int>(options.crowdsky.multi_attr));
  if (options.crowdsky.known_crowd_values != nullptr) {
    for (const DynamicBitset& mask : *options.crowdsky.known_crowd_values) {
      fp.AddI(static_cast<int64_t>(mask.size()));
      for (size_t i = 0; i < mask.size(); ++i) fp.AddB(mask.Test(i));
    }
  }
  // Imported answers pre-resolve pairs and therefore shape the question
  // stream — a resume with a different import set would diverge.
  fp.AddI(static_cast<int64_t>(options.imported_answers.size()));
  for (const ImportedAnswer& a : options.imported_answers) {
    fp.AddI(a.attr);
    fp.AddI(a.u);
    fp.AddI(a.v);
    fp.AddI(static_cast<int>(a.answer));
  }
  return fp.hash;
}

Result<EngineResult> RunSkylineQuery(const Dataset& dataset,
                                     const EngineOptions& options) {
  if (dataset.schema().num_crowd() == 0) {
    return Status::InvalidArgument(
        "dataset has no crowd attribute; use a machine-only skyline "
        "algorithm instead");
  }
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (options.workers_per_question < 1 ||
      options.workers_per_question % 2 == 0) {
    return Status::InvalidArgument(
        "workers_per_question must be positive and odd");
  }
  if (options.dynamic_voting && options.workers_per_question < 3) {
    return Status::InvalidArgument(
        "dynamic voting needs at least 3 base workers");
  }
  if (options.max_questions < 0) {
    return Status::InvalidArgument("max_questions must be non-negative");
  }
  const bool crowdsky_family =
      options.algorithm == Algorithm::kCrowdSkySerial ||
      options.algorithm == Algorithm::kParallelDSet ||
      options.algorithm == Algorithm::kParallelSL;
  if (options.max_questions > 0 && !crowdsky_family) {
    return Status::InvalidArgument(
        "question budgets are only supported by the CrowdSky-family "
        "algorithms (the sort baselines and the unary method need their "
        "full question sets)");
  }
  if (options.governor.max_rounds < 0 || options.governor.max_cost_usd < 0 ||
      options.governor.stall_rounds < 0 ||
      options.governor.deadline_seconds < 0) {
    return Status::InvalidArgument("governor limits must be non-negative");
  }
  if (options.governor.deadline_seconds > 0 &&
      !options.governor.allow_wall_clock) {
    return Status::InvalidArgument(
        "governor.deadline_seconds requires governor.allow_wall_clock: a "
        "wall-clock deadline makes the run nondeterministic");
  }
  if (options.governor.enabled() && !crowdsky_family) {
    return Status::InvalidArgument(
        "the run governor is only supported by the CrowdSky-family "
        "algorithms (the sort baselines and the unary method have no "
        "degraded path for a run stopped early)");
  }
  if (!options.imported_answers.empty() && !crowdsky_family) {
    return Status::InvalidArgument(
        "imported answers are only supported by the CrowdSky-family "
        "algorithms (the sort baselines and the unary method drive their "
        "own fixed question sets)");
  }
  for (const ImportedAnswer& a : options.imported_answers) {
    if (a.attr < 0 || a.attr >= dataset.schema().num_crowd() || a.u < 0 ||
        a.v < 0 || a.u >= dataset.size() || a.v >= dataset.size() ||
        a.u == a.v) {
      return Status::InvalidArgument(
          "imported answer references an attribute or tuple outside the "
          "dataset");
    }
  }
  if (options.durability.resume && options.durability.dir.empty()) {
    return Status::InvalidArgument(
        "durability.resume requires durability.dir");
  }
  if (options.wrap_oracle && options.durability.resume) {
    return Status::InvalidArgument(
        "wrap_oracle cannot be combined with durability.resume: journal "
        "recovery re-drives the oracle to restore its random streams, and "
        "a dispatch wrapper would observe those replayed attempts as if "
        "they were new paid questions");
  }
  if (!options.obs.trace_path.empty() &&
      options.obs.level != obs::ObsLevel::kFull) {
    return Status::InvalidArgument(
        "obs.trace_path requires obs.level = kFull (tracing)");
  }
  if (!options.obs.metrics_path.empty() &&
      options.obs.level == obs::ObsLevel::kDisabled) {
    return Status::InvalidArgument(
        "obs.metrics_path requires obs.level = kCounters or kFull");
  }
  if (options.marketplace.faults.enabled()) {
    if (options.oracle != OracleKind::kMarketplace) {
      return Status::InvalidArgument(
          "fault injection requires the marketplace oracle");
    }
    if (!crowdsky_family) {
      return Status::InvalidArgument(
          "fault injection is only supported by the CrowdSky-family "
          "algorithms (the sort baselines and the unary method have no "
          "degraded path for an unresolved question)");
    }
  }

  // The observer (and the "run" span) covers setup, the driver, and the
  // post-run accounting. Pool counters are scraped as deltas against this
  // baseline because the global pool outlives individual runs.
  std::unique_ptr<obs::RunObserver> observer;
  if (options.obs.level != obs::ObsLevel::kDisabled) {
    observer = std::make_unique<obs::RunObserver>(options.obs.level);
  }
  const ThreadPool::StatsSnapshot pool_baseline =
      ThreadPool::Global().stats();
  obs::TraceSpan run_span = obs::SpanIf(observer.get(), "run");

  obs::TraceSpan structure_span =
      obs::SpanIf(observer.get(), "setup.dominance_structure");
  const DominanceStructure structure(PreferenceMatrix::FromKnown(dataset));
  structure_span.End();

  obs::TraceSpan oracle_span = obs::SpanIf(observer.get(), "setup.oracle");
  std::unique_ptr<CrowdOracle> oracle;
  if (options.oracle == OracleKind::kPerfect) {
    oracle = std::make_unique<PerfectOracle>(dataset);
  } else {
    Rng rng(options.seed);
    const VotingPolicy voting =
        options.dynamic_voting
            ? VotingPolicy::MakeDynamic(options.workers_per_question,
                                        structure, &rng)
            : VotingPolicy::MakeStatic(options.workers_per_question);
    if (options.oracle == OracleKind::kMarketplace) {
      MarketplaceOptions market = options.marketplace;
      market.seed = rng.Next();
      oracle =
          std::make_unique<CrowdMarketplace>(dataset, market, voting);
    } else {
      oracle = std::make_unique<SimulatedCrowd>(dataset, options.worker,
                                                voting, rng.Next());
    }
  }
  oracle_span.End();
  if (options.wrap_oracle) {
    oracle = options.wrap_oracle(std::move(oracle));
    CROWDSKY_CHECK_MSG(oracle != nullptr,
                       "wrap_oracle must return the wrapped oracle");
  }
  CrowdSession session(oracle.get());
  if (options.max_questions > 0) {
    session.SetQuestionBudget(options.max_questions);
  }
  session.SetRetryPolicy(options.retry);
  // Attach before any durability restore so replayed work is counted too.
  if (observer != nullptr) session.AttachObserver(observer.get());
  // The governor meters with the engine's effective pricing (ω folded in)
  // and reserves each question's full retry chain before funding it. It
  // must see every round, so it too attaches before any restore: a
  // resumed run's cost ledger covers the whole run, not just the part
  // after the crash.
  std::unique_ptr<RunGovernor> governor;
  if (options.governor.enabled()) {
    AmtCostModel pricing = options.cost_model;
    pricing.workers_per_question = options.workers_per_question;
    governor = std::make_unique<RunGovernor>(options.governor, pricing,
                                             options.retry.max_retries);
    session.AttachGovernor(governor.get());
  }

  EngineResult result;
  CrowdSkyOptions crowdsky = options.crowdsky;
  crowdsky.obs = observer.get();
  std::unique_ptr<persist::JournalWriter> journal;
  persist::ResumeOutcome recovered;
  DriverResumeState resume_state;
  std::unique_ptr<EngineCheckpointer> checkpointer;
  const EngineOptions::DurabilityOptions& durability = options.durability;
  if (!durability.dir.empty()) {
    result.durability.enabled = true;
    std::error_code ec;
    std::filesystem::create_directories(durability.dir, ec);
    if (ec) {
      return Status::IOError("cannot create durability directory '" +
                             durability.dir + "': " + ec.message());
    }
    const uint64_t fingerprint = RunFingerprint(dataset, options);
    if (durability.resume) {
      // Replays the journal into the session's answer cache (and restores
      // the oracle's random streams) before the algorithm runs.
      CROWDSKY_ASSIGN_OR_RETURN(
          recovered,
          persist::PrepareResume(durability.dir, fingerprint,
                                 durability.sync, oracle.get(), &session));
      // A governed resume must at least fund the replay: journal credits
      // bypass the governor's gate (they spend no new money), so a cap
      // below the already-journaled cost would end the run with
      // cost_spent > cap — the one inequality the governor exists to
      // prevent. Refuse up front instead. The open tail counts at its
      // current size: it re-closes as a round no smaller than this.
      if (governor != nullptr && options.governor.max_cost_usd > 0) {
        std::vector<int64_t> replay_rounds = recovered.round_questions;
        if (recovered.open_tail_questions > 0) {
          replay_rounds.push_back(recovered.open_tail_questions);
        }
        const double replay_cost =
            governor->cost_model().Cost(replay_rounds);
        if (replay_cost > options.governor.max_cost_usd + 1e-9) {
          return Status::FailedPrecondition(
              "the journaled run already cost $" +
              std::to_string(replay_cost) +
              ", above the governor's dollar cap of $" +
              std::to_string(options.governor.max_cost_usd) +
              "; resume with a cap covering the replay (or 0 = uncapped)");
        }
      }
      journal = std::move(recovered.writer);
      result.durability.resumed = true;
      result.durability.used_checkpoint = recovered.used_checkpoint;
      result.durability.recovered_torn_tail = recovered.recovered_torn_tail;
      result.durability.truncated_termination =
          recovered.truncated_termination;
      resume_state.checkpoint =
          recovered.used_checkpoint ? &recovered.checkpoint : nullptr;
      resume_state.fold = &recovered.fold;
      crowdsky.resume = &resume_state;
    } else {
      CROWDSKY_ASSIGN_OR_RETURN(
          journal, persist::JournalWriter::Create(
                       persist::JournalPath(durability.dir), fingerprint,
                       durability.sync));
      session.AttachJournal(journal.get());
      // A checkpoint left by a previous run in the same directory must
      // not outlive the journal it described.
      std::filesystem::remove(persist::CheckpointPath(durability.dir), ec);
    }
    // Runs with imported answers are journal-only: a checkpoint
    // fast-forward rebuilds driver knowledge from the journaled (paid)
    // prefix, but the original run's knowledge also held seeded answers,
    // recorded at whatever points the driver consulted them — an
    // interleaving the journal cannot capture. Full journal replay
    // re-executes the driver from the start and reconstructs it exactly.
    if (crowdsky_family && durability.checkpoint_every_rounds > 0 &&
        options.imported_answers.empty()) {
      checkpointer = std::make_unique<EngineCheckpointer>(
          persist::CheckpointPath(durability.dir), fingerprint,
          dataset.size(), durability.checkpoint_every_rounds, &session,
          governor.get());
      crowdsky.checkpoint_hook = checkpointer.get();
    }
  }

  // Seed imported answers only now: the durability restore above requires
  // a fresh session, and a seeded pair must never be journaled (it was
  // paid for elsewhere), so seeding follows both the restore and the
  // journal attach. Seeded entries answer cache lookups for free.
  for (const ImportedAnswer& a : options.imported_answers) {
    session.SeedAnswer(a.attr, a.u, a.v, a.answer);
  }
  if (options.round_callback) {
    session.SetRoundCallback(options.round_callback);
  }

  obs::TraceSpan algo_span = obs::SpanIf(observer.get(), "algorithm");
  switch (options.algorithm) {
    case Algorithm::kBaselineSort:
      result.algo = RunBaselineSort(dataset, &session);
      break;
    case Algorithm::kBitonicSort:
      result.algo = RunBitonicBaseline(dataset, &session);
      break;
    case Algorithm::kCrowdSkySerial:
      result.algo = RunCrowdSky(dataset, structure, &session, crowdsky);
      break;
    case Algorithm::kParallelDSet:
      result.algo =
          RunParallelDSet(dataset, structure, &session, crowdsky);
      break;
    case Algorithm::kParallelSL:
      result.algo = RunParallelSL(dataset, structure, &session, crowdsky);
      break;
    case Algorithm::kUnary:
      result.algo = RunUnary(dataset, &session);
      break;
  }
  algo_span.End();

  if (journal != nullptr) {
    CROWDSKY_CHECK_MSG(
        session.credits_remaining() == 0,
        "resumed run finished without consuming every journaled answer — "
        "the re-execution diverged from the original run");
    // A governed stop leaves its marker as the journal's final record
    // (the revocable epilogue PrepareResume truncates when the run is
    // later extended under a larger budget). The driver has wound down:
    // no open round, every credit consumed — exactly the quiescent shape
    // JournalTermination requires.
    if (governor != nullptr && governor->stopped()) {
      session.JournalTermination(result.algo.termination);
    }
    CROWDSKY_RETURN_NOT_OK(journal->Sync());
    result.durability.replayed_pair_attempts =
        session.replayed_pair_attempts();
    result.durability.replayed_unary_questions =
        session.replayed_unary_questions();
    result.durability.journal_records = journal->records_total();
    result.durability.new_records = journal->records_appended();
  }

  if (options.export_answers) {
    for (const auto& [question, answer] : session.CachedAnswers()) {
      result.exported_answers.push_back(ImportedAnswer{
          question.attr, question.first, question.second, answer});
    }
  }

  result.skyline_labels.reserve(result.algo.skyline.size());
  for (const int id : result.algo.skyline) {
    result.skyline_labels.push_back(dataset.tuple(id).label);
  }
  result.accuracy = EvaluateNewSkylineAccuracy(dataset, result.algo.skyline);
  AmtCostModel cost = options.cost_model;
  cost.workers_per_question = options.workers_per_question;
  result.cost_usd = cost.Cost(result.algo.questions_per_round);

  if (observer != nullptr) {
    // Scrape the quantities the session cannot mirror itself: oracle and
    // cost-model aggregates, the journal writer's own ledgers, and the
    // (nondeterministic) thread-pool deltas since the run started.
    obs::MetricRegistry& metrics = observer->metrics();
    metrics.FindOrCreateCounter("crowdsky.worker_answers")
        ->Add(session.oracle_stats().worker_answers);
    metrics.FindOrCreateCounter("crowdsky.free_lookups")
        ->Add(result.algo.free_lookups);
    metrics.FindOrCreateCounter("crowdsky.hits_paid")
        ->Add(cost.Hits(result.algo.questions_per_round));
    metrics.FindOrCreateGauge("crowdsky.cost_usd")->Set(result.cost_usd);
    if (journal != nullptr) {
      metrics.FindOrCreateCounter("journal.records_total")
          ->Add(journal->records_total());
      metrics.FindOrCreateCounter("journal.bytes_appended")
          ->Add(journal->bytes_appended());
      metrics.FindOrCreateCounter("journal.fsyncs")->Add(journal->fsyncs());
    }
    if (governor != nullptr) {
      // Deterministic (audited) mirrors of the governor's own ledgers.
      metrics.FindOrCreateCounter("governor.rounds_observed")
          ->Add(governor->rounds_closed());
      metrics.FindOrCreateCounter("governor.hits_funded")
          ->Add(governor->hits_closed());
      metrics.FindOrCreateCounter("governor.denied_questions")
          ->Add(governor->denied_questions());
      metrics.FindOrCreateCounter("governor.stops")
          ->Add(governor->stopped() ? 1 : 0);
      metrics.FindOrCreateGauge("governor.cost_spent_usd")
          ->Set(governor->cost_spent_usd());
      metrics.FindOrCreateGauge("governor.cost_cap_usd")
          ->Set(governor->cost_cap_usd());
    }
    const ThreadPool::StatsSnapshot pool = ThreadPool::Global().stats();
    metrics.FindOrCreateCounter("pool.tasks_submitted")
        ->Add(pool.tasks_submitted - pool_baseline.tasks_submitted);
    metrics.FindOrCreateCounter("pool.tasks_executed")
        ->Add(pool.tasks_executed - pool_baseline.tasks_executed);
    metrics.FindOrCreateCounter("pool.steals")
        ->Add(pool.steals - pool_baseline.steals);
    metrics.FindOrCreateCounter("pool.parallel_fors")
        ->Add(pool.parallel_fors - pool_baseline.parallel_fors);
    metrics.FindOrCreateGauge("pool.max_queue_depth")
        ->Set(static_cast<double>(pool.max_queue_depth));

    if (options.crowdsky.audit) {
      audit::AuditReport obs_report;
      const audit::InvariantAuditor auditor;
      auditor.AuditObservability(metrics, session, result.algo, cost,
                                 &obs_report);
      CROWDSKY_CHECK_MSG(obs_report.ok(), obs_report.ToString().c_str());
    }

    run_span.End();
    result.obs.enabled = true;
    result.obs.tracing = observer->tracing_enabled();
    result.obs.counters = metrics.CounterSamples();
    result.obs.gauges = metrics.GaugeSamples();
    result.obs.trace_events = observer->trace().event_count();
    if (!options.obs.metrics_path.empty()) {
      CROWDSKY_RETURN_NOT_OK(
          obs::WritePrometheusText(options.obs.metrics_path, metrics));
    }
    if (!options.obs.trace_path.empty()) {
      CROWDSKY_RETURN_NOT_OK(
          obs::WriteChromeTrace(options.obs.trace_path, observer->trace()));
    }
  }
  return result;
}

}  // namespace crowdsky
