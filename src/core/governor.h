// Run governor: deadlines, dollar caps and cooperative cancellation.
//
// CrowdSky runs are open-ended — the paper's cost model (Section 6.2,
// cost = 0.02·ω·Σ⌈|Qᵢ|/5⌉) puts no a-priori bound on what a query spends,
// and a slow or adversarial crowd can stall a run forever. The governor is
// the single policy point that bounds a run: a round cap, a dollar cap
// expressed directly in the paper's cost formula, a stall watchdog, an
// external CancellationToken, and (opt-in, explicitly nondeterministic) a
// wall-clock deadline.
//
// Granularity contract: the governor gates at *question start*, never
// mid-retry. `CanFundQuestion` reserves the worst case (1 + max_retries
// paid attempts) before admitting a question, so an admitted question's
// retry loop always runs to completion and `cost_spent <= cap` holds by
// induction — and, crucially, the journal record stream of a capped run
// is a byte-exact prefix of the uninterrupted run's stream, which is what
// makes resume-under-a-larger-cap replay with zero re-paid questions.
//
// Determinism: with the deadline disabled and no cancellation token, every
// decision is a pure function of the session's ledgers, so governed runs
// stay bit-identical across replays. The wall-clock read lives behind
// `GovernorOptions::allow_wall_clock` and is confined to governor.cc.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "crowd/cost_model.h"
#include "crowd/question.h"

namespace crowdsky {

/// Thread-safe external cancel hook. The caller keeps the token alive for
/// the duration of the run and may call Cancel() from any thread; the
/// governor observes it at round boundaries and before each paid ask.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Limits for one run. Zero means "unlimited" for every numeric field; a
/// default-constructed GovernorOptions disables the governor entirely and
/// the engine's output is byte-identical to an ungoverned run.
struct GovernorOptions {
  /// Stop after this many closed rounds (0 = unlimited).
  int64_t max_rounds = 0;
  /// Hard dollar cap on the paper's cost formula (0 = uncapped). A
  /// question is only funded when its worst-case retry chain still fits.
  double max_cost_usd = 0.0;
  /// Trip after this many consecutive closed rounds that resolved zero
  /// new questions (0 = watchdog off).
  int stall_rounds = 0;
  /// Wall-clock deadline in seconds from governor construction (0 = off).
  /// Requires allow_wall_clock: deadlines make runs nondeterministic.
  double deadline_seconds = 0.0;
  /// Explicit opt-in to the one wall-clock read. Without it, a nonzero
  /// deadline_seconds fails engine validation instead of silently
  /// breaking bit-identical replay.
  bool allow_wall_clock = false;
  /// External cancel hook, not owned; may be flipped from another thread.
  CancellationToken* cancel = nullptr;

  bool enabled() const {
    return max_rounds > 0 || max_cost_usd > 0.0 || stall_rounds > 0 ||
           deadline_seconds > 0.0 || cancel != nullptr;
  }
};

/// Why a run stopped. kCompleted means the driver ran to its natural end
/// (which may still be a degraded/partial result under retry caps).
enum class TerminationReason : uint8_t {
  kCompleted = 0,
  kCancelled = 1,
  kDeadline = 2,
  kRoundCap = 3,
  kDollarCap = 4,
  kStalled = 5,
};

/// Stable lowercase name ("completed", "dollar_cap", ...) for reports,
/// logs and the chaos harness's RESULT lines.
const char* TerminationReasonName(TerminationReason reason);

/// How a run ended, attached to AlgoResult next to the CompletenessReport:
/// the CompletenessReport says *what* is unresolved, the TerminationReport
/// says *why the run stopped paying*.
struct TerminationReport {
  /// True when a governor was attached (even if it never tripped).
  bool governed = false;
  TerminationReason reason = TerminationReason::kCompleted;
  /// Closed rounds at termination.
  int64_t rounds = 0;
  /// Cost of all closed rounds under `cost_model` (the governor's ledger;
  /// the auditor recomputes it from the session's per-round vector).
  double cost_spent_usd = 0.0;
  /// Configured caps, 0 = unlimited — kept so reason/ledger consistency
  /// is auditable from the report alone.
  double cost_cap_usd = 0.0;
  int64_t round_cap = 0;
  int stall_cap = 0;
  /// Paid asks the governor refused to fund.
  int64_t denied_questions = 0;
  /// Pricing the governor metered with.
  AmtCostModel cost_model;
  /// Questions abandoned without an answer (canonical order; mirrors
  /// CrowdSession::unresolved_questions()).
  std::vector<PairQuestion> unresolved;

  std::string ToString() const;
};

/// Per-run governor instance. Owned by the engine, consulted by
/// CrowdSession before every paid ask and at every round close. Not
/// thread-safe by itself: all calls come from the driver thread (the
/// CancellationToken is the only cross-thread channel).
class RunGovernor {
 public:
  /// `model` is the engine's effective pricing (options.workers_per_question
  /// folded in); `max_retries` is the retry policy's cap, reserved in
  /// full before a question is funded.
  RunGovernor(const GovernorOptions& options, const AmtCostModel& model,
              int max_retries);

  /// Whether a new paid question (worst case 1 + max_retries attempts on
  /// top of `open_round_questions` already open) still fits every limit.
  /// Latches the stop state and counts the denial when it does not.
  bool CanFundQuestion(int64_t open_round_questions);

  /// Round-boundary bookkeeping and checks. `round_questions` is the
  /// closed round's |Q_i|; `resolved_total` is a monotone count of
  /// resolved questions (cache size + unary), used by the stall watchdog.
  void OnRoundClosed(int64_t round_questions, int64_t resolved_total);

  bool stopped() const { return stopped_; }
  TerminationReason reason() const { return reason_; }

  /// Cost of all closed rounds (open-round questions are reserved by
  /// CanFundQuestion but only billed when their round closes).
  double cost_spent_usd() const { return HitCost(closed_hits_); }
  double cost_cap_usd() const { return options_.max_cost_usd; }
  int64_t rounds_closed() const { return rounds_closed_; }
  int64_t hits_closed() const { return closed_hits_; }
  int64_t denied_questions() const { return denied_; }

  const GovernorOptions& options() const { return options_; }
  const AmtCostModel& cost_model() const { return model_; }

 private:
  /// Checks the external signals (cancel token, armed deadline); the
  /// highest-priority one that fires latches the stop state.
  void PollExternal();
  /// First stop wins; later causes are ignored (the report carries one
  /// reason, and the journal's termination record must be stable).
  void Stop(TerminationReason reason);
  double HitCost(int64_t hits) const {
    return model_.reward_per_hit * model_.workers_per_question *
           static_cast<double>(hits);
  }

  const GovernorOptions options_;
  const AmtCostModel model_;
  const int max_retries_;
  /// Armed deadline as an absolute GovernorNowSeconds() value; < 0 = off.
  double deadline_at_ = -1.0;

  bool stopped_ = false;
  TerminationReason reason_ = TerminationReason::kCompleted;
  int64_t closed_hits_ = 0;
  int64_t rounds_closed_ = 0;
  int64_t denied_ = 0;
  int stall_streak_ = 0;
  int64_t last_resolved_total_ = 0;
};

}  // namespace crowdsky
