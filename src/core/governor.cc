#include "core/governor.h"

#include <chrono>
#include <cstdio>

namespace crowdsky {
namespace {

// Dollar comparisons tolerate one ULP-ish slack: the ledger itself is
// integer HITs, only the final reward multiply is floating point.
constexpr double kCostEpsilon = 1e-9;

// The governor's single wall-clock read, used only by the opt-in deadline
// path (GovernorOptions::allow_wall_clock). Everything else the governor
// decides is derived from rounds and ledgers. Kept here, not in the
// header, so the CS-CLK002 allowlist entry scopes to exactly this file.
double GovernorNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* TerminationReasonName(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kCompleted:
      return "completed";
    case TerminationReason::kCancelled:
      return "cancelled";
    case TerminationReason::kDeadline:
      return "deadline";
    case TerminationReason::kRoundCap:
      return "round_cap";
    case TerminationReason::kDollarCap:
      return "dollar_cap";
    case TerminationReason::kStalled:
      return "stalled";
  }
  return "unknown";
}

std::string TerminationReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "termination{reason=%s governed=%d rounds=%lld "
                "cost_spent=%.2f cost_cap=%.2f round_cap=%lld "
                "denied=%lld unresolved=%zu}",
                TerminationReasonName(reason), governed ? 1 : 0,
                static_cast<long long>(rounds), cost_spent_usd, cost_cap_usd,
                static_cast<long long>(round_cap),
                static_cast<long long>(denied_questions), unresolved.size());
  return std::string(buf);
}

RunGovernor::RunGovernor(const GovernorOptions& options,
                         const AmtCostModel& model, int max_retries)
    : options_(options), model_(model), max_retries_(max_retries) {
  CROWDSKY_CHECK(options_.max_rounds >= 0);
  CROWDSKY_CHECK(options_.max_cost_usd >= 0.0);
  CROWDSKY_CHECK(options_.stall_rounds >= 0);
  CROWDSKY_CHECK(options_.deadline_seconds >= 0.0);
  CROWDSKY_CHECK(max_retries_ >= 0);
  CROWDSKY_CHECK(model_.questions_per_hit > 0);
  CROWDSKY_CHECK_MSG(
      options_.deadline_seconds == 0.0 || options_.allow_wall_clock,
      "a wall-clock deadline requires GovernorOptions::allow_wall_clock");
  if (options_.deadline_seconds > 0.0) {
    deadline_at_ = GovernorNowSeconds() + options_.deadline_seconds;
  }
}

void RunGovernor::PollExternal() {
  if (stopped_) return;
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    Stop(TerminationReason::kCancelled);
    return;
  }
  if (deadline_at_ >= 0.0 && GovernorNowSeconds() >= deadline_at_) {
    Stop(TerminationReason::kDeadline);
  }
}

void RunGovernor::Stop(TerminationReason reason) {
  if (stopped_) return;
  stopped_ = true;
  reason_ = reason;
}

bool RunGovernor::CanFundQuestion(int64_t open_round_questions) {
  CROWDSKY_CHECK(open_round_questions >= 0);
  PollExternal();
  if (!stopped_ && options_.max_cost_usd > 0.0) {
    // Reserve the question's worst case up front: 1 + max_retries paid
    // attempts, all landing in the currently open round. Once funded, the
    // retry loop never stalls mid-question, so the journal stream of a
    // capped run stays a prefix of the uncapped run's stream.
    const int64_t worst_open =
        open_round_questions + 1 + static_cast<int64_t>(max_retries_);
    const int64_t worst_hits =
        closed_hits_ + (worst_open + model_.questions_per_hit - 1) /
                           model_.questions_per_hit;
    if (HitCost(worst_hits) > options_.max_cost_usd + kCostEpsilon) {
      Stop(TerminationReason::kDollarCap);
    }
  }
  if (stopped_) {
    ++denied_;
    return false;
  }
  return true;
}

void RunGovernor::OnRoundClosed(int64_t round_questions,
                                int64_t resolved_total) {
  CROWDSKY_CHECK(round_questions > 0);
  closed_hits_ += (round_questions + model_.questions_per_hit - 1) /
                  model_.questions_per_hit;
  ++rounds_closed_;
  if (resolved_total == last_resolved_total_) {
    ++stall_streak_;
  } else {
    CROWDSKY_CHECK(resolved_total > last_resolved_total_);
    stall_streak_ = 0;
    last_resolved_total_ = resolved_total;
  }
  PollExternal();
  if (!stopped_ && options_.max_rounds > 0 &&
      rounds_closed_ >= options_.max_rounds) {
    Stop(TerminationReason::kRoundCap);
  }
  if (!stopped_ && options_.stall_rounds > 0 &&
      stall_streak_ >= options_.stall_rounds) {
    Stop(TerminationReason::kStalled);
  }
}

}  // namespace crowdsky
