// The three real-life workloads of Section 6.2 (Q1/Q2/Q3), rebuilt as
// embedded datasets so the AMT experiments can be reproduced offline with
// the simulated crowd. See DESIGN.md for the substitution rationale.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace crowdsky {

/// Q1 — Rectangles (adopted from Marcus et al. [14] as in the paper):
/// 50 rectangles of size {(30+3i) x (40+5i) | i in [0,50)}, each randomly
/// rotated. The machine sees the rotated bounding box
/// (AK = {bbox_width MAX, bbox_height MAX}); the crowd judges the true
/// area (AC = {area MAX}), for which exact ground truth exists — this is
/// the query whose accuracy the paper measures exactly (P = R = 1.0).
Dataset MakeRectanglesDataset(uint64_t seed = 7);

/// Q2 — Movies: 50 popular movies released 2000-2012.
/// AK = {box_office MAX ($M, worldwide), year MAX}; AC = {rating MAX} with
/// IMDb ratings as the hidden ground truth. The ground-truth skyline is the
/// paper's crowdsourced skyline: {Avatar, The Avengers, Inception, The Lord
/// of the Rings: The Fellowship of the Ring, The Dark Knight Rises}; the
/// first two are already the AK skyline.
Dataset MakeMoviesDataset();

/// Q3 — MLB pitchers: 40 starting pitchers of the 2013 season.
/// AK = {wins MAX, strikeouts MAX, era MIN}; AC = {valuable MAX} with a
/// WAR-like value score as hidden ground truth. The ground-truth skyline is
/// {Clayton Kershaw, Bartolo Colon, Yu Darvish, Max Scherzer} — all 2013
/// Cy Young candidates, with Kershaw and Scherzer the actual winners,
/// matching the paper's validation.
Dataset MakeMlbPitchersDataset();

}  // namespace crowdsky
