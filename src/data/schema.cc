#include "data/schema.h"

#include <unordered_set>

#include "common/string_util.h"

namespace crowdsky {

Schema::Schema(std::vector<AttributeSpec> attributes)
    : attributes_(std::move(attributes)) {
  for (int i = 0; i < num_attributes(); ++i) {
    if (attributes_[static_cast<size_t>(i)].kind == AttributeKind::kKnown) {
      known_indices_.push_back(i);
    } else {
      crowd_indices_.push_back(i);
    }
  }
}

Result<Schema> Schema::Make(std::vector<AttributeSpec> attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("schema needs at least one attribute");
  }
  std::unordered_set<std::string> names;
  for (const AttributeSpec& spec : attributes) {
    if (spec.name.empty()) {
      return Status::InvalidArgument("attribute names must be non-empty");
    }
    if (!names.insert(spec.name).second) {
      return Status::AlreadyExists("duplicate attribute name: " + spec.name);
    }
  }
  return Schema(std::move(attributes));
}

Schema Schema::MakeSynthetic(int num_known, int num_crowd, Direction dir) {
  CROWDSKY_CHECK(num_known >= 0 && num_crowd >= 0 &&
                 num_known + num_crowd > 0);
  std::vector<AttributeSpec> specs;
  specs.reserve(static_cast<size_t>(num_known + num_crowd));
  for (int i = 0; i < num_known; ++i) {
    specs.push_back({StringFormat("K%d", i + 1), dir, AttributeKind::kKnown});
  }
  for (int i = 0; i < num_crowd; ++i) {
    specs.push_back({StringFormat("C%d", i + 1), dir, AttributeKind::kCrowd});
  }
  auto result = Make(std::move(specs));
  result.status().CheckOK();
  return std::move(result).ValueOrDie();
}

Result<int> Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (attributes_[static_cast<size_t>(i)].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

}  // namespace crowdsky
