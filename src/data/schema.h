// Schema: attribute metadata for a skyline relation.
//
// Attributes are partitioned into *known* attributes (AK — values present
// in the data, compared by machine) and *crowd* attributes (AC — values
// missing from the machine's point of view; preferences between tuples on
// these attributes must be obtained from crowd workers). This mirrors
// Section 2.2 of the paper. Each attribute also carries a preference
// direction: the paper assumes "smaller is better" throughout; real queries
// (Section 6.2) need MAX and mixed directions, so the direction is explicit
// here and the dominance tests honour it.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace crowdsky {

/// Preference direction of an attribute.
enum class Direction {
  kMin,  ///< smaller values are preferred
  kMax,  ///< larger values are preferred
};

/// Whether an attribute's values are machine-known or crowd-assessed.
enum class AttributeKind {
  kKnown,  ///< in AK: values present, machine-comparable
  kCrowd,  ///< in AC: values hidden; preferences come from the crowd
};

/// Declaration of a single attribute.
struct AttributeSpec {
  std::string name;
  Direction direction = Direction::kMin;
  AttributeKind kind = AttributeKind::kKnown;
};

/// \brief Immutable attribute layout of a dataset.
///
/// Construct through Make(), which validates that names are unique and
/// non-empty and that at least one attribute exists.
class Schema {
 public:
  /// Validates specs and builds a schema.
  static Result<Schema> Make(std::vector<AttributeSpec> attributes);

  /// Convenience factory: `num_known` known + `num_crowd` crowd attributes,
  /// all with direction `dir`, named K1..Kn / C1..Cm. Used by the synthetic
  /// experiments.
  static Schema MakeSynthetic(int num_known, int num_crowd,
                              Direction dir = Direction::kMin);

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  int num_known() const { return static_cast<int>(known_indices_.size()); }
  int num_crowd() const { return static_cast<int>(crowd_indices_.size()); }

  const AttributeSpec& attribute(int i) const {
    return attributes_[static_cast<size_t>(i)];
  }
  const std::vector<AttributeSpec>& attributes() const { return attributes_; }

  /// Indices (into the full attribute list) of known attributes, in order.
  const std::vector<int>& known_indices() const { return known_indices_; }
  /// Indices of crowd attributes, in order.
  const std::vector<int>& crowd_indices() const { return crowd_indices_; }

  /// Index of the attribute named `name`, or NotFound.
  Result<int> IndexOf(const std::string& name) const;

  bool operator==(const Schema& other) const {
    if (attributes_.size() != other.attributes_.size()) return false;
    for (size_t i = 0; i < attributes_.size(); ++i) {
      const AttributeSpec& a = attributes_[i];
      const AttributeSpec& b = other.attributes_[i];
      if (a.name != b.name || a.direction != b.direction ||
          a.kind != b.kind) {
        return false;
      }
    }
    return true;
  }

 private:
  explicit Schema(std::vector<AttributeSpec> attributes);

  std::vector<AttributeSpec> attributes_;
  std::vector<int> known_indices_;
  std::vector<int> crowd_indices_;
};

}  // namespace crowdsky
