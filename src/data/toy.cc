#include "data/toy.h"

namespace crowdsky {
namespace {

Schema ToySchema() {
  auto schema = Schema::Make({
      {"A1", Direction::kMin, AttributeKind::kKnown},
      {"A2", Direction::kMin, AttributeKind::kKnown},
      {"A3", Direction::kMin, AttributeKind::kCrowd},
  });
  schema.status().CheckOK();
  return std::move(schema).ValueOrDie();
}

}  // namespace

int ToyId(char label) {
  CROWDSKY_CHECK(label >= 'a' && label <= 'l');
  return label - 'a';
}

Dataset MakeToyDataset() {
  // AK values from Figure 1(a). The hidden A3 values (smaller = more
  // preferred) realize the total order f < h < k < e < i < b < l < j < a <
  // c < d < g, which is consistent with every edge the paper derives:
  // b<a, e<{b,c,d,g}, f<{b,e,j}, h<{e,i}, i<l, k<i.
  std::vector<std::vector<double>> rows = {
      /* a */ {2, 8, 9},
      /* b */ {1, 6, 6},
      /* c */ {4, 10, 10},
      /* d */ {5, 7, 11},
      /* e */ {4, 4, 4},
      /* f */ {5, 9, 1},
      /* g */ {6, 5, 12},
      /* h */ {7, 7, 2},
      /* i */ {7, 2, 5},
      /* j */ {8, 9, 8},
      /* k */ {9, 3, 3},
      /* l */ {9, 1, 7},
  };
  std::vector<std::string> labels = {"a", "b", "c", "d", "e", "f",
                                     "g", "h", "i", "j", "k", "l"};
  auto ds = Dataset::Make(ToySchema(), std::move(rows), std::move(labels));
  ds.status().CheckOK();
  return std::move(ds).ValueOrDie();
}

Dataset MakeAntiCorrelatedToyDataset() {
  // AK values from Figure 3(a); e dominates every other tuple in AC.
  std::vector<std::vector<double>> rows = {
      /* a */ {5, 10, 5},
      /* b */ {2, 5, 2},
      /* c */ {6, 9, 6},
      /* d */ {8, 7, 7},
      /* e */ {3, 4, 1},
      /* f */ {7, 8, 8},
      /* g */ {9, 6, 9},
      /* h */ {10, 5, 10},
      /* i */ {4, 2, 3},
      /* j */ {5, 1, 4},
  };
  std::vector<std::string> labels = {"a", "b", "c", "d", "e",
                                     "f", "g", "h", "i", "j"};
  auto ds = Dataset::Make(ToySchema(), std::move(rows), std::move(labels));
  ds.status().CheckOK();
  return std::move(ds).ValueOrDie();
}

}  // namespace crowdsky
