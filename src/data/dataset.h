// Dataset: the base relation R of a crowd-enabled skyline query.
//
// Every tuple physically stores a value for *all* attributes, including the
// crowd attributes. The crowd-attribute values are the hidden ground truth:
// the machine-side algorithms never read them; only the simulated crowd
// (src/crowd/) and the accuracy evaluation do. This matches the paper's
// synthetic setup ("the values on crowd attributes were only used for
// obtaining the answers of crowds").
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "data/schema.h"

namespace crowdsky {

/// One row of the relation. `id` is the row's index within its Dataset.
struct Tuple {
  int id = -1;
  std::string label;           ///< optional human-readable name
  std::vector<double> values;  ///< one value per schema attribute
};

/// \brief An immutable relation instance: a Schema plus tuples.
class Dataset {
 public:
  /// Validates that every row has schema-many finite values and assigns
  /// sequential ids.
  static Result<Dataset> Make(Schema schema,
                              std::vector<std::vector<double>> rows,
                              std::vector<std::string> labels = {});

  const Schema& schema() const { return schema_; }
  int size() const { return static_cast<int>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  const Tuple& tuple(int id) const {
    CROWDSKY_DCHECK(id >= 0 && id < size());
    return tuples_[static_cast<size_t>(id)];
  }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Value of attribute `attr` (full-schema index) for tuple `id`.
  double value(int id, int attr) const {
    return tuple(id).values[static_cast<size_t>(attr)];
  }

  /// Returns a copy of this dataset restricted to the given tuple ids
  /// (ids are re-assigned sequentially in the projection).
  Dataset Project(const std::vector<int>& ids) const;

 private:
  Dataset(Schema schema, std::vector<Tuple> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace crowdsky
