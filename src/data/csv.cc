#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace crowdsky {
namespace {

Result<AttributeSpec> ParseHeaderField(const std::string& field) {
  const std::vector<std::string> parts = SplitString(field, ':');
  if (parts.size() != 3) {
    return Status::InvalidArgument(
        "header field must be name:kind:direction, got '" + field + "'");
  }
  AttributeSpec spec;
  spec.name = std::string(TrimWhitespace(parts[0]));
  const std::string kind(TrimWhitespace(parts[1]));
  const std::string dir(TrimWhitespace(parts[2]));
  if (kind == "known") {
    spec.kind = AttributeKind::kKnown;
  } else if (kind == "crowd") {
    spec.kind = AttributeKind::kCrowd;
  } else {
    return Status::InvalidArgument("attribute kind must be known|crowd: '" +
                                   kind + "'");
  }
  if (dir == "min") {
    spec.direction = Direction::kMin;
  } else if (dir == "max") {
    spec.direction = Direction::kMax;
  } else {
    return Status::InvalidArgument("direction must be min|max: '" + dir +
                                   "'");
  }
  return spec;
}

}  // namespace

Result<Dataset> ReadCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV input");
  }
  const std::vector<std::string> header = SplitString(line, ',');
  std::vector<AttributeSpec> specs;
  bool has_label = false;
  for (size_t i = 0; i < header.size(); ++i) {
    const std::string field(TrimWhitespace(header[i]));
    if (field == "label") {
      if (i + 1 != header.size()) {
        return Status::InvalidArgument("label must be the last column");
      }
      has_label = true;
      break;
    }
    CROWDSKY_ASSIGN_OR_RETURN(AttributeSpec spec, ParseHeaderField(field));
    specs.push_back(std::move(spec));
  }
  CROWDSKY_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(specs)));

  std::vector<std::vector<double>> rows;
  std::vector<std::string> labels;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (TrimWhitespace(line).empty()) continue;
    // The first num_attributes() fields are numeric; when a label column
    // exists, everything after the last numeric field is the label, so
    // labels may themselves contain commas ("Monsters, Inc.").
    std::vector<double> row;
    row.reserve(static_cast<size_t>(schema.num_attributes()));
    size_t pos = 0;
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (pos > line.size()) {
        return Status::InvalidArgument(StringFormat(
            "line %zu: expected %d numeric fields", line_no,
            schema.num_attributes()));
      }
      size_t comma = line.find(',', pos);
      const bool last_field = a + 1 == schema.num_attributes() && !has_label;
      if (last_field) {
        if (comma != std::string::npos) {
          return Status::InvalidArgument(StringFormat(
              "line %zu: too many fields", line_no));
        }
        comma = line.size();
      } else if (comma == std::string::npos) {
        if (a + 1 == schema.num_attributes() && has_label) {
          return Status::InvalidArgument(StringFormat(
              "line %zu: missing label field", line_no));
        }
        return Status::InvalidArgument(StringFormat(
            "line %zu: expected %d numeric fields", line_no,
            schema.num_attributes()));
      }
      auto value = ParseDouble(
          std::string_view(line).substr(pos, comma - pos));
      if (!value.ok()) {
        return Status::InvalidArgument(
            StringFormat("line %zu, column %d: %s", line_no, a,
                         value.status().message().c_str()));
      }
      row.push_back(*value);
      pos = comma + 1;
    }
    rows.push_back(std::move(row));
    if (has_label) {
      labels.emplace_back(
          TrimWhitespace(std::string_view(line).substr(
              pos > line.size() ? line.size() : pos)));
    }
  }
  return Dataset::Make(std::move(schema), std::move(rows),
                       std::move(labels));
}

Result<Dataset> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadCsv(in);
}

Status WriteCsv(const Dataset& dataset, std::ostream& out) {
  const Schema& schema = dataset.schema();
  bool any_label = false;
  for (const Tuple& t : dataset.tuples()) {
    if (!t.label.empty()) {
      any_label = true;
      break;
    }
  }
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (a > 0) out << ',';
    const AttributeSpec& spec = schema.attribute(a);
    out << spec.name << ':'
        << (spec.kind == AttributeKind::kKnown ? "known" : "crowd") << ':'
        << (spec.direction == Direction::kMin ? "min" : "max");
  }
  if (any_label) out << ",label";
  out << '\n';
  for (const Tuple& t : dataset.tuples()) {
    for (size_t a = 0; a < t.values.size(); ++a) {
      if (a > 0) out << ',';
      out << StringFormat("%.17g", t.values[a]);
    }
    if (any_label) out << ',' << t.label;
    out << '\n';
  }
  if (!out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteCsvFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return WriteCsv(dataset, out);
}

}  // namespace crowdsky
