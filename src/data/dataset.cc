#include "data/dataset.h"

#include <cmath>

#include "common/string_util.h"

namespace crowdsky {

Result<Dataset> Dataset::Make(Schema schema,
                              std::vector<std::vector<double>> rows,
                              std::vector<std::string> labels) {
  if (!labels.empty() && labels.size() != rows.size()) {
    return Status::InvalidArgument(StringFormat(
        "label count (%zu) does not match row count (%zu)", labels.size(),
        rows.size()));
  }
  std::vector<Tuple> tuples;
  tuples.reserve(rows.size());
  const auto width = static_cast<size_t>(schema.num_attributes());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != width) {
      return Status::InvalidArgument(StringFormat(
          "row %zu has %zu values, schema has %zu attributes", i,
          rows[i].size(), width));
    }
    for (double v : rows[i]) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            StringFormat("row %zu contains a non-finite value", i));
      }
    }
    Tuple t;
    t.id = static_cast<int>(i);
    t.values = std::move(rows[i]);
    if (!labels.empty()) t.label = std::move(labels[i]);
    tuples.push_back(std::move(t));
  }
  return Dataset(std::move(schema), std::move(tuples));
}

Dataset Dataset::Project(const std::vector<int>& ids) const {
  std::vector<Tuple> selected;
  selected.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    Tuple t = tuple(ids[i]);
    t.id = static_cast<int>(i);
    selected.push_back(std::move(t));
  }
  return Dataset(schema_, std::move(selected));
}

}  // namespace crowdsky
