// CSV load/save for datasets, so users can bring their own relations to the
// examples and the engine.
//
// Format: the first line is a header of `name:kind:direction` fields, e.g.
//     width:known:max,height:known:max,area:crowd:max,label
// An optional trailing `label` column carries tuple names. Remaining lines
// are numeric rows. Crowd columns hold the hidden ground-truth values (use
// 0 for "truly unknown"; they are only read by the simulated crowd).
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace crowdsky {

/// Parses a dataset from CSV text.
Result<Dataset> ReadCsv(std::istream& in);

/// Parses a dataset from a CSV file on disk.
Result<Dataset> ReadCsvFile(const std::string& path);

/// Serializes a dataset to CSV text (inverse of ReadCsv).
Status WriteCsv(const Dataset& dataset, std::ostream& out);

/// Serializes a dataset to a CSV file on disk.
Status WriteCsvFile(const Dataset& dataset, const std::string& path);

}  // namespace crowdsky
