// The paper's two worked toy datasets, used by the walkthrough bench and by
// the tests that assert Tables 1-3 and Examples 2-8 literally.
#pragma once

#include "data/dataset.h"

namespace crowdsky {

/// Figure 1's 12-tuple dataset: AK = {A1, A2} (smaller preferred),
/// AC = {A3}. The hidden A3 values realize the preference tree of
/// Figure 1(b)/Figure 4(b); the full-A skyline is {b, e, i, l, k, f, h}
/// and the AK skyline is {b, e, i, l}. Tuple ids 0..11 correspond to
/// labels "a".."l".
Dataset MakeToyDataset();

/// Figure 3's anti-correlated 10-tuple dataset: AK = {A1, A2}, AC = {A3},
/// with e the most preferred tuple in AC (it dominates everything there,
/// as in the probing discussion of Section 3.4). Ids 0..9 are "a".."j".
Dataset MakeAntiCorrelatedToyDataset();

/// Id of the tuple labelled `label` ("a".."l") in the toy datasets.
int ToyId(char label);

}  // namespace crowdsky
