#include "data/generator.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"

namespace crowdsky {

const char* DataDistributionName(DataDistribution d) {
  switch (d) {
    case DataDistribution::kIndependent:
      return "IND";
    case DataDistribution::kAntiCorrelated:
      return "ANT";
    case DataDistribution::kCorrelated:
      return "COR";
  }
  return "?";
}

namespace {

double ClippedGaussian(Rng* rng, double mean, double stddev) {
  double v;
  do {
    v = rng->Gaussian(mean, stddev);
  } while (v < 0.0 || v >= 1.0);
  return v;
}

std::vector<double> IndependentPoint(Rng* rng, int dims) {
  std::vector<double> x(static_cast<size_t>(dims));
  for (double& v : x) v = rng->NextDouble();
  return x;
}

// Anti-correlated point per the Börzsönyi generator: start from a common
// plane value, then move mass between random coordinate pairs so the sum is
// preserved. Points end up scattered around the hyperplane sum(x) = d * c;
// the tight plane spread (sigma = 0.05) keeps most point pairs mutually
// incomparable, which is what blows up anti-correlated skylines.
std::vector<double> AntiCorrelatedPoint(Rng* rng, int dims) {
  const double c = ClippedGaussian(rng, 0.5, 0.05);
  std::vector<double> x(static_cast<size_t>(dims), c);
  if (dims < 2) return x;
  const int transfers = 2 * dims;
  for (int k = 0; k < transfers; ++k) {
    const auto i =
        static_cast<size_t>(rng->NextBounded(static_cast<uint64_t>(dims)));
    auto j =
        static_cast<size_t>(rng->NextBounded(static_cast<uint64_t>(dims)));
    if (i == j) continue;
    const double room = std::min(x[i], 1.0 - x[j]);
    if (room <= 0.0) continue;
    const double delta = rng->Uniform(0.0, room);
    x[i] -= delta;
    x[j] += delta;
  }
  return x;
}

std::vector<double> CorrelatedPoint(Rng* rng, int dims) {
  const double c = ClippedGaussian(rng, 0.5, 0.25 / 3.0);
  std::vector<double> x(static_cast<size_t>(dims));
  for (double& v : x) {
    v = std::clamp(c + rng->Gaussian(0.0, 0.05), 0.0, 1.0 - 1e-12);
  }
  return x;
}

}  // namespace

Result<Dataset> GenerateDataset(const GeneratorOptions& options) {
  if (options.cardinality <= 0) {
    return Status::InvalidArgument(
        StringFormat("cardinality must be positive, got %d",
                     options.cardinality));
  }
  if (options.num_known < 0 || options.num_crowd < 0 ||
      options.num_known + options.num_crowd == 0) {
    return Status::InvalidArgument("need at least one attribute");
  }
  const int dims = options.num_known + options.num_crowd;
  Schema schema = Schema::MakeSynthetic(options.num_known, options.num_crowd,
                                        options.direction);
  Rng rng(options.seed);
  std::vector<std::vector<double>> rows;
  rows.reserve(static_cast<size_t>(options.cardinality));
  for (int i = 0; i < options.cardinality; ++i) {
    switch (options.distribution) {
      case DataDistribution::kIndependent:
        rows.push_back(IndependentPoint(&rng, dims));
        break;
      case DataDistribution::kAntiCorrelated:
        rows.push_back(AntiCorrelatedPoint(&rng, dims));
        break;
      case DataDistribution::kCorrelated:
        rows.push_back(CorrelatedPoint(&rng, dims));
        break;
    }
  }
  return Dataset::Make(std::move(schema), std::move(rows));
}

}  // namespace crowdsky
