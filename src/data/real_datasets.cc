#include "data/real_datasets.h"

#include <cmath>

#include "common/random.h"
#include "common/string_util.h"

namespace crowdsky {
namespace {

Schema MakeSchemaOrDie(std::vector<AttributeSpec> specs) {
  auto schema = Schema::Make(std::move(specs));
  schema.status().CheckOK();
  return std::move(schema).ValueOrDie();
}

Dataset MakeDatasetOrDie(Schema schema, std::vector<std::vector<double>> rows,
                         std::vector<std::string> labels) {
  auto ds =
      Dataset::Make(std::move(schema), std::move(rows), std::move(labels));
  ds.status().CheckOK();
  return std::move(ds).ValueOrDie();
}

}  // namespace

Dataset MakeRectanglesDataset(uint64_t seed) {
  Schema schema = MakeSchemaOrDie({
      {"bbox_width", Direction::kMax, AttributeKind::kKnown},
      {"bbox_height", Direction::kMax, AttributeKind::kKnown},
      {"area", Direction::kMax, AttributeKind::kCrowd},
  });
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<std::string> labels;
  for (int i = 0; i < 50; ++i) {
    const double w = 30.0 + 3.0 * i;
    const double h = 40.0 + 5.0 * i;
    // Random rotation in [0, pi/2); the displayed bounding box is what a
    // worker (and the known attributes) would "see".
    const double theta = rng.Uniform(0.0, 1.5707963267948966);
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    const double bbox_w = w * c + h * s;
    const double bbox_h = w * s + h * c;
    rows.push_back({bbox_w, bbox_h, w * h});
    labels.push_back(StringFormat("rect_%02d", i));
  }
  return MakeDatasetOrDie(std::move(schema), std::move(rows),
                          std::move(labels));
}

Dataset MakeMoviesDataset() {
  Schema schema = MakeSchemaOrDie({
      {"box_office", Direction::kMax, AttributeKind::kKnown},
      {"year", Direction::kMax, AttributeKind::kKnown},
      {"rating", Direction::kMax, AttributeKind::kCrowd},
  });
  // {worldwide gross $M, release year, IMDb-style rating (hidden)}.
  struct Movie {
    const char* title;
    double gross;
    double year;
    double rating;
  };
  static const Movie kMovies[] = {
      {"Avatar", 2788, 2009, 7.9},
      {"The Avengers", 1519, 2012, 8.1},
      {"Inception", 836, 2010, 8.8},
      {"The Lord of the Rings: The Fellowship of the Ring", 898, 2001, 8.8},
      {"The Dark Knight Rises", 1081, 2012, 8.4},
      {"Harry Potter and the Deathly Hallows Part 2", 1342, 2011, 8.1},
      {"Transformers: Dark of the Moon", 1124, 2011, 6.2},
      {"Skyfall", 1109, 2012, 7.8},
      {"Toy Story 3", 1067, 2010, 8.3},
      {"Pirates of the Caribbean: Dead Man's Chest", 1066, 2006, 7.3},
      {"Alice in Wonderland", 1025, 2010, 6.4},
      {"Pirates of the Caribbean: On Stranger Tides", 1046, 2011, 6.6},
      {"Harry Potter and the Sorcerer's Stone", 975, 2001, 7.6},
      {"Pirates of the Caribbean: At World's End", 961, 2007, 7.1},
      {"Harry Potter and the Deathly Hallows Part 1", 960, 2010, 7.7},
      {"The Hobbit: An Unexpected Journey", 1017, 2012, 7.8},
      {"Harry Potter and the Order of the Phoenix", 942, 2007, 7.5},
      {"Harry Potter and the Half-Blood Prince", 934, 2009, 7.6},
      {"Shrek 2", 928, 2004, 7.3},
      {"Harry Potter and the Goblet of Fire", 897, 2005, 7.7},
      {"Spider-Man 3", 891, 2007, 6.3},
      {"Ice Age: Dawn of the Dinosaurs", 886, 2009, 6.9},
      {"Harry Potter and the Chamber of Secrets", 879, 2002, 7.4},
      {"Ice Age: Continental Drift", 877, 2012, 6.5},
      {"Finding Nemo", 871, 2003, 8.2},
      {"The Twilight Saga: Breaking Dawn Part 2", 829, 2012, 5.5},
      {"Spider-Man", 825, 2002, 7.4},
      {"Shrek the Third", 813, 2007, 6.1},
      {"Harry Potter and the Prisoner of Azkaban", 797, 2004, 7.9},
      {"Spider-Man 2", 789, 2004, 7.5},
      {"The Amazing Spider-Man", 758, 2012, 6.9},
      {"Shrek Forever After", 753, 2010, 6.3},
      {"Madagascar 3: Europe's Most Wanted", 747, 2012, 6.8},
      {"Up", 735, 2009, 8.3},
      {"The Twilight Saga: Breaking Dawn Part 1", 712, 2011, 4.9},
      {"Mission: Impossible - Ghost Protocol", 695, 2011, 7.4},
      {"The Hunger Games", 694, 2012, 7.2},
      {"Kung Fu Panda 2", 665, 2011, 7.2},
      {"Kung Fu Panda", 632, 2008, 7.6},
      {"Men in Black 3", 624, 2012, 6.8},
      {"Ratatouille", 624, 2007, 8.1},
      {"Casino Royale", 599, 2006, 8.0},
      {"Iron Man", 585, 2008, 7.9},
      {"Monsters, Inc.", 528, 2001, 8.1},
      {"WALL-E", 521, 2008, 8.4},
      {"Gladiator", 460, 2000, 8.5},
      {"The Bourne Ultimatum", 444, 2007, 8.0},
      {"Batman Begins", 373, 2005, 8.2},
      {"The Departed", 291, 2006, 8.5},
      {"The Prestige", 109, 2006, 8.5},
  };
  std::vector<std::vector<double>> rows;
  std::vector<std::string> labels;
  for (const Movie& m : kMovies) {
    rows.push_back({m.gross, m.year, m.rating});
    labels.emplace_back(m.title);
  }
  return MakeDatasetOrDie(std::move(schema), std::move(rows),
                          std::move(labels));
}

Dataset MakeMlbPitchersDataset() {
  Schema schema = MakeSchemaOrDie({
      {"wins", Direction::kMax, AttributeKind::kKnown},
      {"strikeouts", Direction::kMax, AttributeKind::kKnown},
      {"era", Direction::kMin, AttributeKind::kKnown},
      {"valuable", Direction::kMax, AttributeKind::kCrowd},
  });
  // {wins, strikeouts, ERA, WAR-like value (hidden)} — 2013 season.
  struct Pitcher {
    const char* name;
    double wins;
    double so;
    double era;
    double value;
  };
  static const Pitcher kPitchers[] = {
      {"Clayton Kershaw", 16, 232, 1.83, 7.8},
      {"Max Scherzer", 21, 240, 2.90, 6.4},
      {"Yu Darvish", 13, 277, 2.83, 5.6},
      {"Bartolo Colon", 18, 117, 2.65, 5.7},
      {"Adam Wainwright", 19, 219, 2.94, 6.2},
      {"Anibal Sanchez", 14, 202, 2.57, 6.2},
      {"Matt Harvey", 9, 191, 2.27, 6.1},
      {"Jose Fernandez", 12, 187, 2.19, 6.3},
      {"Cliff Lee", 14, 222, 2.87, 5.2},
      {"Chris Sale", 11, 226, 3.07, 6.9},
      {"Felix Hernandez", 12, 216, 3.04, 6.0},
      {"Jordan Zimmermann", 19, 161, 3.25, 3.6},
      {"Hisashi Iwakuma", 14, 185, 2.66, 5.6},
      {"Zack Greinke", 15, 148, 2.63, 3.4},
      {"Justin Verlander", 13, 217, 3.46, 5.2},
      {"James Shields", 13, 196, 3.15, 4.1},
      {"Jon Lester", 15, 177, 3.75, 4.3},
      {"David Price", 10, 151, 3.33, 2.9},
      {"Madison Bumgarner", 13, 199, 2.77, 3.8},
      {"Cole Hamels", 8, 202, 3.60, 4.5},
      {"Homer Bailey", 11, 199, 3.49, 3.4},
      {"Gio Gonzalez", 11, 192, 3.36, 3.0},
      {"Stephen Strasburg", 8, 191, 3.00, 3.1},
      {"Julio Teheran", 14, 170, 3.20, 3.1},
      {"Mat Latos", 14, 187, 3.16, 3.4},
      {"Shelby Miller", 15, 169, 3.06, 3.2},
      {"Patrick Corbin", 14, 178, 3.41, 3.9},
      {"Jhoulys Chacin", 14, 126, 3.47, 3.8},
      {"Ervin Santana", 9, 161, 3.24, 3.1},
      {"Doug Fister", 14, 159, 3.67, 4.2},
      {"Rick Porcello", 13, 142, 4.32, 2.6},
      {"CC Sabathia", 14, 175, 4.78, 1.3},
      {"R.A. Dickey", 14, 177, 4.21, 2.0},
      {"Jeff Samardzija", 8, 214, 4.34, 2.4},
      {"A.J. Burnett", 10, 209, 3.30, 3.0},
      {"Lance Lynn", 15, 198, 3.97, 2.3},
      {"Kris Medlen", 15, 157, 3.11, 2.4},
      {"Hyun-jin Ryu", 14, 154, 3.00, 3.0},
      {"C.J. Wilson", 17, 188, 3.39, 2.9},
      {"Francisco Liriano", 16, 163, 3.02, 3.0},
  };
  std::vector<std::vector<double>> rows;
  std::vector<std::string> labels;
  for (const Pitcher& p : kPitchers) {
    rows.push_back({p.wins, p.so, p.era, p.value});
    labels.emplace_back(p.name);
  }
  return MakeDatasetOrDie(std::move(schema), std::move(rows),
                          std::move(labels));
}

}  // namespace crowdsky
