// Synthetic data generators following the classic skyline benchmark of
// Börzsönyi, Kossmann & Stocker (ICDE 2001), which is what the paper's
// synthetic evaluation uses (Section 6.1, Table 4). Three distributions:
//
//  * independent (IND):      every coordinate uniform in [0, 1)
//  * anti-correlated (ANT):  points near the hyperplane sum(x) = d/2; good
//                            in one dimension implies bad in another, which
//                            blows up the skyline size
//  * correlated (COR):       coordinates clustered around a shared quality
//                            value; tiny skylines (bonus beyond the paper)
//
// Crowd-attribute values are generated exactly like known ones; they serve
// as the hidden ground truth for the simulated crowd.
#pragma once

#include <cstdint>

#include "common/result.h"
#include "data/dataset.h"

namespace crowdsky {

/// Data distribution of the synthetic generator.
enum class DataDistribution {
  kIndependent,
  kAntiCorrelated,
  kCorrelated,
};

/// Short display name ("IND", "ANT", "COR").
const char* DataDistributionName(DataDistribution d);

/// Parameters of a synthetic dataset (paper Table 4).
struct GeneratorOptions {
  int cardinality = 4000;  ///< n, number of tuples
  int num_known = 4;       ///< |AK|
  int num_crowd = 1;       ///< |AC|
  DataDistribution distribution = DataDistribution::kIndependent;
  uint64_t seed = 42;
  /// Preference direction applied to every attribute (the paper uses MIN).
  Direction direction = Direction::kMin;
};

/// Generates a synthetic dataset. Fails on non-positive cardinality or a
/// schema with no attributes.
Result<Dataset> GenerateDataset(const GeneratorOptions& options);

}  // namespace crowdsky
