// Atomic driver-progress checkpoints, the second leg of crash-safe runs.
//
// A checkpoint snapshots everything a CrowdSky-family driver needs to skip
// its completed work on resume: the completion bitsets, the partial
// skyline and undetermined lists, the free-lookup/cache-hit ledgers, and —
// crucially — how many journal records the snapshot covers. Checkpoints
// are only taken at *quiescent* points (no evaluator mid-flight, no open
// crowd round), so the journal prefix up to `journal_records` is exactly
// the set of questions the skipped work paid for; the journal tail beyond
// it replays through the re-executed remainder as credits.
//
// Durability: written to a temp file, fsynced, then renamed over the live
// checkpoint — a crash mid-write leaves the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace crowdsky::persist {

/// One durable snapshot of driver progress.
struct CheckpointData {
  /// Must match the journal's (and the run's) config fingerprint.
  uint64_t fingerprint = 0;
  /// Journal records covered: the session folds records [0, journal_records)
  /// directly into its state; later records replay as credits.
  int64_t journal_records = 0;
  int32_t num_tuples = 0;
  /// Per-tuple completion flags (0/1), CompletionState at the snapshot.
  std::vector<uint8_t> complete;
  std::vector<uint8_t> nonskyline;
  /// Partial skyline in discovery order (drivers sort at the end).
  std::vector<int32_t> skyline;
  /// Undetermined tuples in discovery order.
  std::vector<int32_t> undetermined;
  /// Driver-specific pending work list (ParallelSL: the ready queue in
  /// activation order; empty for the serial and DSet drivers, which
  /// re-derive their iteration order from the completion bitsets).
  std::vector<int32_t> pending;
  /// Ledgers that the skipped work accumulated and re-execution cannot
  /// regenerate.
  int64_t free_lookups = 0;
  int64_t cache_hits = 0;
};

/// Atomically replaces the checkpoint at `path`.
Status WriteCheckpoint(const std::string& path, const CheckpointData& data);

/// Loads and validates a checkpoint. NotFound when no checkpoint exists;
/// InvalidArgument on corruption (callers typically fall back to a
/// journal-only resume in that case).
Result<CheckpointData> ReadCheckpoint(const std::string& path);

}  // namespace crowdsky::persist
