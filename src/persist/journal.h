// Append-only, checksummed write-ahead journal of resolved crowd answers.
//
// Every *resolved* paid question (all its attempts, the aggregated answer
// or the give-up, and the fault-trace cursor), every unary question, and
// every closed crowd round is appended as one CRC-framed record by
// CrowdSession the moment it resolves — before the algorithm acts on the
// answer. A killed run therefore loses at most the question that was in
// flight (which, having never been journaled, is also the exact point
// where the deterministic oracle's RNG stream stands after replay — the
// resumed run re-pays nothing and diverges nowhere).
//
// File layout:
//   header   := magic "CSKYJNL1" | u32 version | u64 fingerprint | u32 crc
//   record   := u32 payload_size | u32 crc32(payload) | payload
// The fingerprint hashes the run configuration (dataset, options, seed);
// resuming under a different configuration is refused instead of silently
// replaying answers into the wrong run.
//
// Torn tails: a crash can leave a half-written record at the end of the
// file. ReadJournal parses records until the first frame that is short,
// fails its CRC, or does not decode, and reports everything before it as
// valid; recovery truncates the tail and appends from there.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "crowd/question.h"

namespace crowdsky::persist {

/// How durable each appended record is before Append returns.
enum class SyncMode {
  kBuffered,  ///< user-space buffer; lost on process death (fastest)
  kFlush,     ///< write(2) per record; survives process death (default)
  kFsync,     ///< fdatasync per record; survives machine crash (slowest)
};

/// Stable display name ("buffered", "flush", "fsync").
const char* SyncModeName(SyncMode mode);

/// Summary of one paid attempt at a pair question (the journaled subset of
/// PairOutcome — everything the session's accounting consumes).
struct AttemptOutcome {
  static constexpr uint8_t kOk = 0;
  static constexpr uint8_t kDegradedQuorum = 1;
  static constexpr uint8_t kFailed = 2;

  uint8_t status = kOk;
  bool transient_error = false;
  bool hit_expired = false;
  int32_t extra_latency_rounds = 0;
  int32_t votes_expected = 0;
  int32_t votes_counted = 0;
  int32_t no_shows = 0;
  int32_t stragglers = 0;

  bool operator==(const AttemptOutcome&) const = default;
};

/// One durable journal entry.
struct JournalRecord {
  enum class Kind : uint8_t {
    kPairAsk = 0,      ///< a resolved (or given-up) pair question
    kUnary = 1,        ///< one unary question
    kRoundEnd = 2,     ///< a crowd round closed
    kTermination = 3,  ///< the governor stopped the run (always last)
  };
  Kind kind = Kind::kPairAsk;

  // kPairAsk: the canonical question, its ask context, every paid attempt
  // in order, and the final fate. `answer` is valid iff `resolved`.
  PairQuestion question;
  uint64_t freq = 0;
  bool resolved = false;
  Answer answer = Answer::kEqual;
  std::vector<AttemptOutcome> attempts;

  // kUnary: the question and the aggregated value estimate.
  int32_t unary_id = 0;
  int32_t unary_attr = 0;
  double unary_value = 0.0;

  // kRoundEnd: how many questions the closed round held.
  int64_t round_questions = 0;

  // kTermination: why the governor stopped the run, and the ledger at the
  // stop (a TerminationReason as uint8_t; persist/ stays below core/).
  // Resume treats this record — and the quiescent kRoundEnd before it —
  // as a revocable epilogue: PrepareResume truncates both so a run capped
  // at C resumes under C' > C on a byte-exact prefix of the uncapped
  // stream.
  uint8_t termination_reason = 0;
  int64_t termination_rounds = 0;
  double termination_cost_spent = 0.0;
  double termination_cost_cap = 0.0;

  // Fault-trace cursor: total draws the marketplace's FaultInjector has
  // made after this record (both 0 when no injector is attached). Recovery
  // verifies the re-driven fault stream lands on the same cursor.
  uint64_t fault_attempt_draws = 0;
  uint64_t fault_vote_draws = 0;
};

/// Encodes one record as a framed byte string (size + CRC + payload);
/// exposed for tests that fabricate corrupt journals.
std::string EncodeRecord(const JournalRecord& record);

/// \brief Appender with per-record durability control.
///
/// Test hook: when the environment variable CROWDSKY_JOURNAL_KILL_AFTER is
/// set to N > 0, the process _Exit(137)s immediately after the N-th record
/// appended by this process becomes durable — the kill-point harness's
/// seeded crash injection. CROWDSKY_JOURNAL_KILL_TEAR additionally appends
/// that many garbage bytes first, simulating a torn in-flight record.
class JournalWriter {
 public:
  /// Creates (truncating) a fresh journal and writes its header.
  static Result<std::unique_ptr<JournalWriter>> Create(
      const std::string& path, uint64_t fingerprint, SyncMode sync);

  /// Opens a recovered journal for appending. The header must carry
  /// `fingerprint`; `existing_records` (from ReadJournal, after any
  /// truncation) seeds records_total().
  static Result<std::unique_ptr<JournalWriter>> OpenForAppend(
      const std::string& path, uint64_t fingerprint, SyncMode sync,
      int64_t existing_records);

  ~JournalWriter();
  CROWDSKY_DISALLOW_COPY(JournalWriter);

  /// Appends one record with the configured durability.
  Status Append(const JournalRecord& record);

  /// Drains the user-space buffer (kBuffered) and fdatasyncs. Called
  /// before a checkpoint references the journal prefix by record count.
  Status Sync();

  const std::string& path() const { return path_; }
  SyncMode sync_mode() const { return sync_; }
  /// Records appended by this writer (this process).
  int64_t records_appended() const { return appended_; }
  /// Records in the file: pre-existing (recovered) + appended.
  int64_t records_total() const { return existing_ + appended_; }
  /// Record bytes appended by this writer (frames only; the header written
  /// by Create is not counted). Deterministic for a given record stream.
  int64_t bytes_appended() const { return bytes_appended_; }
  /// fdatasync(2) calls issued by this writer (kFsync appends, explicit
  /// Sync()s, and the header sync under kFsync).
  int64_t fsyncs() const { return fsyncs_; }

 private:
  JournalWriter(std::string path, int fd, SyncMode sync, int64_t existing);

  Status WriteFrame(const std::string& frame);
  Status FlushBuffer();
  void MaybeKillForTest();

  std::string path_;
  int fd_;
  SyncMode sync_;
  int64_t existing_;
  int64_t appended_ = 0;
  int64_t bytes_appended_ = 0;
  int64_t fsyncs_ = 0;
  std::string buffer_;
  long kill_after_ = 0;
  long kill_tear_ = 0;
};

/// Everything ReadJournal recovered from disk.
struct RecoveredJournal {
  uint64_t fingerprint = 0;
  std::vector<JournalRecord> records;
  /// Bytes of header + valid records; the safe truncation point.
  int64_t valid_bytes = 0;
  /// Trailing bytes failed to parse (torn in-flight record or garbage).
  bool torn_tail = false;
  int64_t torn_bytes = 0;
};

/// Parses a journal, stopping at (and reporting) any torn tail. Fails on a
/// missing file or an unrecognizable/corrupt header.
Result<RecoveredJournal> ReadJournal(const std::string& path);

/// Physically truncates the journal to `valid_bytes` (torn-tail removal).
Status TruncateJournal(const std::string& path, int64_t valid_bytes);

}  // namespace crowdsky::persist
