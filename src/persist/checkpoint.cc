#include "persist/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "persist/wire.h"

namespace crowdsky::persist {
namespace {

constexpr char kMagic[8] = {'C', 'S', 'K', 'Y', 'C', 'K', 'P', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kMaxListEntries = 1u << 26;

void PutBytes(ByteWriter* w, const std::vector<uint8_t>& v) {
  w->PutU32(static_cast<uint32_t>(v.size()));
  for (const uint8_t b : v) w->PutU8(b);
}

void PutInts(ByteWriter* w, const std::vector<int32_t>& v) {
  w->PutU32(static_cast<uint32_t>(v.size()));
  for (const int32_t i : v) w->PutI32(i);
}

bool GetBytes(ByteReader* r, std::vector<uint8_t>* v) {
  const uint32_t n = r->GetU32();
  if (!r->ok() || n > kMaxListEntries) return false;
  v->resize(n);
  for (uint8_t& b : *v) {
    b = r->GetU8();
    if (b > 1) return false;
  }
  return r->ok();
}

bool GetInts(ByteReader* r, std::vector<int32_t>* v) {
  const uint32_t n = r->GetU32();
  if (!r->ok() || n > kMaxListEntries) return false;
  v->resize(n);
  for (int32_t& i : *v) i = r->GetI32();
  return r->ok();
}

std::string EncodeCheckpoint(const CheckpointData& d) {
  ByteWriter w;
  for (const char c : kMagic) w.PutU8(static_cast<uint8_t>(c));
  w.PutU32(kFormatVersion);
  w.PutU64(d.fingerprint);
  w.PutI64(d.journal_records);
  w.PutI32(d.num_tuples);
  PutBytes(&w, d.complete);
  PutBytes(&w, d.nonskyline);
  PutInts(&w, d.skyline);
  PutInts(&w, d.undetermined);
  PutInts(&w, d.pending);
  w.PutI64(d.free_lookups);
  w.PutI64(d.cache_hits);
  std::string payload = w.Take();
  ByteWriter crc;
  crc.PutU32(Crc32(payload));
  payload += crc.str();
  return payload;
}

bool DecodeCheckpoint(std::string_view data, CheckpointData* out) {
  if (data.size() < sizeof kMagic + 4 ||
      std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
    return false;
  }
  ByteReader tail(data.substr(data.size() - 4));
  if (tail.GetU32() != Crc32(data.data(), data.size() - 4)) return false;
  ByteReader r(data.substr(0, data.size() - 4));
  for (size_t i = 0; i < sizeof kMagic; ++i) r.GetU8();
  if (r.GetU32() != kFormatVersion) return false;
  out->fingerprint = r.GetU64();
  out->journal_records = r.GetI64();
  out->num_tuples = r.GetI32();
  if (!GetBytes(&r, &out->complete) || !GetBytes(&r, &out->nonskyline) ||
      !GetInts(&r, &out->skyline) || !GetInts(&r, &out->undetermined) ||
      !GetInts(&r, &out->pending)) {
    return false;
  }
  out->free_lookups = r.GetI64();
  out->cache_hits = r.GetI64();
  if (!r.exhausted()) return false;
  const size_t n = static_cast<size_t>(out->num_tuples);
  return out->journal_records >= 0 && out->num_tuples >= 0 &&
         out->complete.size() == n && out->nonskyline.size() == n &&
         out->free_lookups >= 0 && out->cache_hits >= 0;
}

}  // namespace

Status WriteCheckpoint(const std::string& path, const CheckpointData& data) {
  const std::string encoded = EncodeCheckpoint(data);
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create checkpoint temp '" + tmp +
                           "': " + std::strerror(errno));
  }
  const char* p = encoded.data();
  size_t left = encoded.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError(std::string("checkpoint write failed: ") +
                             std::strerror(errno));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fdatasync(fd) != 0) {
    ::close(fd);
    return Status::IOError("checkpoint fdatasync failed");
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot publish checkpoint '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

Result<CheckpointData> ReadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("checkpoint '" + path + "' does not exist");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string data = contents.str();
  CheckpointData out;
  if (!DecodeCheckpoint(data, &out)) {
    return Status::InvalidArgument("checkpoint '" + path +
                                   "' is corrupt or unrecognized");
  }
  return out;
}

}  // namespace crowdsky::persist
