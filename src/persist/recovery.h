// Crash recovery: turns a journal directory back into a live, resumable
// run.
//
// PrepareResume is the one entry point. It
//   1. reads the journal, truncating any torn tail left by the crash and
//      any governor-termination epilogue (a capped/cancelled run's stop
//      marker plus its final round boundary — revocable bookkeeping, not
//      answers), so a terminated run can resume under a larger budget,
//   2. refuses to proceed if the journal's config fingerprint does not
//      match the resuming run's,
//   3. loads the checkpoint if one exists and is consistent (corrupt or
//      stale checkpoints degrade to a journal-only resume, never an error),
//   4. re-drives the deterministic oracle over *every* recovered record,
//      verifying bit-exact agreement (attempt outcomes, answers, unary
//      values, fault-trace cursors) — this both authenticates the journal
//      against the current configuration and advances the oracle's RNG /
//      worker-pool / fault state to exactly where the dead process stood,
//   5. folds the checkpointed prefix into the session and queues the tail
//      as credits, and
//   6. reopens the journal for appending.
//
// After PrepareResume succeeds, the algorithm simply runs: completed work
// is skipped via the checkpoint, already-paid questions replay from
// credits, and the first genuinely new question hits the oracle with every
// random stream in the same position as an uninterrupted run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "persist/checkpoint.h"
#include "persist/journal.h"

namespace crowdsky {
class CrowdOracle;
class CrowdSession;
}  // namespace crowdsky

namespace crowdsky::persist {

/// Canonical file locations inside a durability directory.
std::string JournalPath(const std::string& dir);
std::string CheckpointPath(const std::string& dir);

/// Everything a resumed run needs that the session does not hold itself.
struct ResumeOutcome {
  /// A consistent checkpoint was found; `checkpoint` is meaningful and the
  /// driver should skip the completed work it describes.
  bool used_checkpoint = false;
  CheckpointData checkpoint;
  /// The crash left a half-written record that was truncated away.
  bool recovered_torn_tail = false;
  int64_t torn_bytes = 0;
  /// The journal ended in a governor-termination epilogue (kTermination
  /// plus its quiescent kRoundEnd) that was truncated away so the run can
  /// extend its partial result under a new budget.
  bool truncated_termination = false;
  /// The recovered journal's per-round question counts and its open tail
  /// (questions past the last round end), post-truncation. The engine
  /// uses them to refuse a governed resume whose dollar cap cannot even
  /// cover the replay of what was already paid.
  std::vector<int64_t> round_questions;
  int64_t open_tail_questions = 0;
  /// Valid records recovered = folded_records + credit_records.
  int64_t journal_records = 0;
  int64_t folded_records = 0;
  int64_t credit_records = 0;
  /// The folded prefix, kept alive for the driver's knowledge rebuild
  /// (preference-graph Record() replay in journal order).
  std::vector<JournalRecord> fold;
  /// The reopened journal; attach to the session and keep alive for the
  /// rest of the run.
  std::unique_ptr<JournalWriter> writer;
};

/// Recovers `dir` into `session` (which must be fresh, with its budget and
/// retry policy already configured) against `oracle` (freshly constructed
/// from the same seed/options as the original run). `fingerprint` must
/// match the journal header. `sync` configures the reopened writer.
Result<ResumeOutcome> PrepareResume(const std::string& dir,
                                    uint64_t fingerprint, SyncMode sync,
                                    CrowdOracle* oracle,
                                    CrowdSession* session);

}  // namespace crowdsky::persist
