#include "persist/recovery.h"

#include <cstring>
#include <deque>
#include <iterator>
#include <string>
#include <utility>

#include "crowd/fault_injector.h"
#include "crowd/oracle.h"
#include "crowd/session.h"

namespace crowdsky::persist {
namespace {

uint8_t StatusByte(PairOutcome::Status status) {
  switch (status) {
    case PairOutcome::Status::kOk:
      return AttemptOutcome::kOk;
    case PairOutcome::Status::kDegradedQuorum:
      return AttemptOutcome::kDegradedQuorum;
    case PairOutcome::Status::kFailed:
      return AttemptOutcome::kFailed;
  }
  return AttemptOutcome::kFailed;
}

bool AttemptMatches(const PairOutcome& outcome, const AttemptOutcome& a) {
  return StatusByte(outcome.status) == a.status &&
         outcome.transient_error == a.transient_error &&
         outcome.hit_expired == a.hit_expired &&
         outcome.extra_latency_rounds == a.extra_latency_rounds &&
         outcome.votes_expected == a.votes_expected &&
         outcome.votes_counted == a.votes_counted &&
         outcome.no_shows == a.no_shows &&
         outcome.stragglers == a.stragglers;
}

Status Diverged(int64_t index, const std::string& what) {
  return Status::FailedPrecondition(
      "journal record " + std::to_string(index) +
      " does not replay against this configuration (" + what +
      "); the journal belongs to a different run");
}

/// Replays one record's oracle calls, verifying bit-exact agreement. On
/// success the oracle's RNG / pool / fault streams have advanced exactly
/// as they did when the record was first written.
Status RedriveRecord(CrowdOracle* oracle, const JournalRecord& record,
                     int64_t index) {
  AskContext ctx;
  ctx.freq = static_cast<size_t>(record.freq);
  switch (record.kind) {
    case JournalRecord::Kind::kPairAsk: {
      if (record.attempts.empty()) return Diverged(index, "no attempts");
      for (size_t i = 0; i < record.attempts.size(); ++i) {
        const PairOutcome outcome =
            oracle->AnswerPairOutcome(record.question, ctx);
        if (!AttemptMatches(outcome, record.attempts[i])) {
          return Diverged(index, "attempt outcome mismatch");
        }
        const bool last = i + 1 == record.attempts.size();
        const bool failed = outcome.status == PairOutcome::Status::kFailed;
        if (failed != (last ? !record.resolved : true)) {
          return Diverged(index, "attempt shape mismatch");
        }
        if (last && record.resolved && outcome.answer != record.answer) {
          return Diverged(index, "aggregated answer mismatch");
        }
      }
      break;
    }
    case JournalRecord::Kind::kUnary: {
      const double value =
          oracle->AnswerUnary(record.unary_id, record.unary_attr, ctx);
      if (std::memcmp(&value, &record.unary_value, sizeof value) != 0) {
        return Diverged(index, "unary value mismatch");
      }
      break;
    }
    case JournalRecord::Kind::kRoundEnd:
      break;  // rounds are session bookkeeping; nothing to re-drive
    case JournalRecord::Kind::kTermination:
      // PrepareResume strips the termination epilogue before re-driving;
      // one surviving here is not at the tail, which no writer produces.
      return Diverged(index, "termination record not at the journal tail");
  }
  if (const FaultInjector* injector = oracle->fault_injector();
      injector != nullptr) {
    if (injector->attempt_draws() != record.fault_attempt_draws ||
        injector->vote_draws() != record.fault_vote_draws) {
      return Diverged(index, "fault-trace cursor mismatch");
    }
  }
  return Status::OK();
}

}  // namespace

std::string JournalPath(const std::string& dir) {
  return dir + "/journal.bin";
}

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.bin";
}

Result<ResumeOutcome> PrepareResume(const std::string& dir,
                                    uint64_t fingerprint, SyncMode sync,
                                    CrowdOracle* oracle,
                                    CrowdSession* session) {
  CROWDSKY_CHECK(oracle != nullptr && session != nullptr);
  const std::string journal_path = JournalPath(dir);
  CROWDSKY_ASSIGN_OR_RETURN(RecoveredJournal recovered,
                            ReadJournal(journal_path));
  if (recovered.fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "journal '" + journal_path +
        "' was written by a different run configuration; refusing to "
        "replay its answers");
  }
  ResumeOutcome out;
  if (recovered.torn_tail) {
    CROWDSKY_RETURN_NOT_OK(
        TruncateJournal(journal_path, recovered.valid_bytes));
    out.recovered_torn_tail = true;
    out.torn_bytes = recovered.torn_bytes;
  }

  // A governor-terminated run leaves a *revocable epilogue* at the tail:
  // the kTermination marker and the quiescent kRoundEnd right before it.
  // Both describe the stop, not crowd answers — and a capped run's final
  // round may be a strict prefix of the round an uncapped run would close
  // at the same position. Dropping them turns the journal into a
  // byte-exact prefix of the uninterrupted run's stream, so resuming
  // under a larger budget replays every paid answer as a credit and
  // re-closes the final round at its true size (re-appending an identical
  // record when the budgets agree — the truncation is idempotent).
  if (!recovered.records.empty() &&
      recovered.records.back().kind == JournalRecord::Kind::kTermination) {
    int64_t epilogue_bytes =
        static_cast<int64_t>(EncodeRecord(recovered.records.back()).size());
    recovered.records.pop_back();
    if (!recovered.records.empty() &&
        recovered.records.back().kind == JournalRecord::Kind::kRoundEnd) {
      epilogue_bytes +=
          static_cast<int64_t>(EncodeRecord(recovered.records.back()).size());
      recovered.records.pop_back();
    }
    recovered.valid_bytes -= epilogue_bytes;
    CROWDSKY_RETURN_NOT_OK(
        TruncateJournal(journal_path, recovered.valid_bytes));
    out.truncated_termination = true;
  }
  out.journal_records = static_cast<int64_t>(recovered.records.size());

  // Per-round counts of the surviving records, for the engine's
  // governed-resume validation (a cap must at least fund the replay).
  int64_t tail = 0;
  for (const JournalRecord& r : recovered.records) {
    switch (r.kind) {
      case JournalRecord::Kind::kPairAsk:
        tail += static_cast<int64_t>(r.attempts.size());
        break;
      case JournalRecord::Kind::kUnary:
        ++tail;
        break;
      case JournalRecord::Kind::kRoundEnd:
        out.round_questions.push_back(r.round_questions);
        tail = 0;
        break;
      case JournalRecord::Kind::kTermination:
        break;  // truncated above; unreachable
    }
  }
  out.open_tail_questions = tail;

  // A checkpoint is an optimization, never a requirement: missing,
  // corrupt, mismatched or stale checkpoints all degrade to a journal-only
  // resume (fold nothing, replay everything as credits).
  const Result<CheckpointData> checkpoint =
      ReadCheckpoint(CheckpointPath(dir));
  if (checkpoint.ok() && checkpoint->fingerprint == fingerprint &&
      checkpoint->journal_records >= 0 &&
      checkpoint->journal_records <= out.journal_records) {
    out.used_checkpoint = true;
    out.checkpoint = *checkpoint;
  }

  // Re-drive the oracle over every recovered record. This authenticates
  // the journal against the current seed/options and leaves the oracle's
  // random streams exactly where the dead process's stood.
  for (size_t i = 0; i < recovered.records.size(); ++i) {
    CROWDSKY_RETURN_NOT_OK(RedriveRecord(oracle, recovered.records[i],
                                         static_cast<int64_t>(i)));
  }

  const auto fold_end =
      recovered.records.begin() +
      (out.used_checkpoint
           ? static_cast<ptrdiff_t>(out.checkpoint.journal_records)
           : 0);
  out.fold.assign(std::make_move_iterator(recovered.records.begin()),
                  std::make_move_iterator(fold_end));
  std::deque<JournalRecord> credits(
      std::make_move_iterator(fold_end),
      std::make_move_iterator(recovered.records.end()));
  out.folded_records = static_cast<int64_t>(out.fold.size());
  out.credit_records = static_cast<int64_t>(credits.size());

  session->RestoreFromJournal(
      out.fold, std::move(credits),
      out.used_checkpoint ? out.checkpoint.cache_hits : 0);

  CROWDSKY_ASSIGN_OR_RETURN(
      out.writer, JournalWriter::OpenForAppend(journal_path, fingerprint,
                                               sync, out.journal_records));
  session->AttachJournal(out.writer.get());
  return out;
}

}  // namespace crowdsky::persist
