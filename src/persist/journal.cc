#include "persist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "persist/wire.h"

namespace crowdsky::persist {
namespace {

constexpr char kMagic[8] = {'C', 'S', 'K', 'Y', 'J', 'N', 'L', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 4;
// A record holds one question's attempts; anything near this bound is
// corruption, not data.
constexpr uint32_t kMaxPayloadBytes = 1u << 24;
constexpr size_t kBufferFlushBytes = 1u << 20;

std::string EncodeHeader(uint64_t fingerprint) {
  ByteWriter w;
  for (const char c : kMagic) w.PutU8(static_cast<uint8_t>(c));
  w.PutU32(kFormatVersion);
  w.PutU64(fingerprint);
  const uint32_t crc = Crc32(w.str());
  w.PutU32(crc);
  return w.Take();
}

std::string EncodePayload(const JournalRecord& r) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(r.kind));
  switch (r.kind) {
    case JournalRecord::Kind::kPairAsk:
      w.PutI32(r.question.attr);
      w.PutI32(r.question.first);
      w.PutI32(r.question.second);
      w.PutU64(r.freq);
      w.PutU8(r.resolved ? 1 : 0);
      w.PutU8(static_cast<uint8_t>(r.answer));
      w.PutU32(static_cast<uint32_t>(r.attempts.size()));
      for (const AttemptOutcome& a : r.attempts) {
        w.PutU8(a.status);
        w.PutU8(static_cast<uint8_t>((a.transient_error ? 1 : 0) |
                                     (a.hit_expired ? 2 : 0)));
        w.PutI32(a.extra_latency_rounds);
        w.PutI32(a.votes_expected);
        w.PutI32(a.votes_counted);
        w.PutI32(a.no_shows);
        w.PutI32(a.stragglers);
      }
      break;
    case JournalRecord::Kind::kUnary:
      w.PutI32(r.unary_id);
      w.PutI32(r.unary_attr);
      w.PutU64(r.freq);
      w.PutF64(r.unary_value);
      break;
    case JournalRecord::Kind::kRoundEnd:
      w.PutI64(r.round_questions);
      break;
    case JournalRecord::Kind::kTermination:
      w.PutU8(r.termination_reason);
      w.PutI64(r.termination_rounds);
      w.PutF64(r.termination_cost_spent);
      w.PutF64(r.termination_cost_cap);
      break;
  }
  w.PutU64(r.fault_attempt_draws);
  w.PutU64(r.fault_vote_draws);
  return w.Take();
}

bool DecodePayload(std::string_view payload, JournalRecord* out) {
  ByteReader r(payload);
  const uint8_t kind = r.GetU8();
  if (!r.ok() ||
      kind > static_cast<uint8_t>(JournalRecord::Kind::kTermination)) {
    return false;
  }
  out->kind = static_cast<JournalRecord::Kind>(kind);
  switch (out->kind) {
    case JournalRecord::Kind::kPairAsk: {
      out->question.attr = r.GetI32();
      out->question.first = r.GetI32();
      out->question.second = r.GetI32();
      out->freq = r.GetU64();
      const uint8_t resolved = r.GetU8();
      const uint8_t answer = r.GetU8();
      if (resolved > 1 || answer > static_cast<uint8_t>(Answer::kEqual)) {
        return false;
      }
      out->resolved = resolved != 0;
      out->answer = static_cast<Answer>(answer);
      const uint32_t n = r.GetU32();
      if (!r.ok() || n == 0 || n > kMaxPayloadBytes / 22) return false;
      out->attempts.resize(n);
      for (AttemptOutcome& a : out->attempts) {
        a.status = r.GetU8();
        if (a.status > AttemptOutcome::kFailed) return false;
        const uint8_t flags = r.GetU8();
        if (flags > 3) return false;
        a.transient_error = (flags & 1) != 0;
        a.hit_expired = (flags & 2) != 0;
        a.extra_latency_rounds = r.GetI32();
        a.votes_expected = r.GetI32();
        a.votes_counted = r.GetI32();
        a.no_shows = r.GetI32();
        a.stragglers = r.GetI32();
      }
      break;
    }
    case JournalRecord::Kind::kUnary:
      out->unary_id = r.GetI32();
      out->unary_attr = r.GetI32();
      out->freq = r.GetU64();
      out->unary_value = r.GetF64();
      break;
    case JournalRecord::Kind::kRoundEnd:
      out->round_questions = r.GetI64();
      if (r.ok() && out->round_questions <= 0) return false;
      break;
    case JournalRecord::Kind::kTermination:
      out->termination_reason = r.GetU8();
      // 5 == TerminationReason::kStalled, the largest reason; persist/
      // cannot name the core/ enum without inverting the layering.
      if (r.ok() && out->termination_reason > 5) return false;
      out->termination_rounds = r.GetI64();
      out->termination_cost_spent = r.GetF64();
      out->termination_cost_cap = r.GetF64();
      if (r.ok() &&
          (out->termination_rounds < 0 || out->termination_cost_spent < 0.0 ||
           out->termination_cost_cap < 0.0)) {
        return false;
      }
      break;
  }
  out->fault_attempt_draws = r.GetU64();
  out->fault_vote_draws = r.GetU64();
  return r.exhausted();
}

Status WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("journal write failed: ") +
                             std::strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

long EnvLong(const char* name) {
  // Kill-point test configuration, read once per writer at construction;
  // getenv with no setenv anywhere in the library is data-race-free.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): see above
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  return (end != nullptr && *end == '\0' && v > 0) ? v : 0;
}

}  // namespace

const char* SyncModeName(SyncMode mode) {
  switch (mode) {
    case SyncMode::kBuffered:
      return "buffered";
    case SyncMode::kFlush:
      return "flush";
    case SyncMode::kFsync:
      return "fsync";
  }
  return "?";
}

std::string EncodeRecord(const JournalRecord& record) {
  const std::string payload = EncodePayload(record);
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload));
  std::string frame = w.Take();
  frame += payload;
  return frame;
}

JournalWriter::JournalWriter(std::string path, int fd, SyncMode sync,
                             int64_t existing)
    : path_(std::move(path)),
      fd_(fd),
      sync_(sync),
      existing_(existing),
      kill_after_(EnvLong("CROWDSKY_JOURNAL_KILL_AFTER")),
      kill_tear_(EnvLong("CROWDSKY_JOURNAL_KILL_TEAR")) {}

JournalWriter::~JournalWriter() {
  (void)FlushBuffer();
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::Create(
    const std::string& path, uint64_t fingerprint, SyncMode sync) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create journal '" + path +
                           "': " + std::strerror(errno));
  }
  std::unique_ptr<JournalWriter> writer(
      new JournalWriter(path, fd, sync, /*existing=*/0));
  const std::string header = EncodeHeader(fingerprint);
  CROWDSKY_RETURN_NOT_OK(WriteAll(fd, header.data(), header.size()));
  if (sync == SyncMode::kFsync) {
    if (::fdatasync(fd) != 0) {
      return Status::IOError("journal fdatasync failed");
    }
    ++writer->fsyncs_;
  }
  return writer;
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::OpenForAppend(
    const std::string& path, uint64_t fingerprint, SyncMode sync,
    int64_t existing_records) {
  // Re-verify the header before trusting the file with appends.
  CROWDSKY_ASSIGN_OR_RETURN(const RecoveredJournal recovered,
                            ReadJournal(path));
  if (recovered.fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "journal '" + path + "' belongs to a different run configuration");
  }
  if (recovered.torn_tail) {
    return Status::FailedPrecondition(
        "journal '" + path +
        "' still has a torn tail; truncate before appending");
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open journal '" + path +
                           "' for append: " + std::strerror(errno));
  }
  return std::unique_ptr<JournalWriter>(
      new JournalWriter(path, fd, sync, existing_records));
}

Status JournalWriter::WriteFrame(const std::string& frame) {
  bytes_appended_ += static_cast<int64_t>(frame.size());
  if (sync_ == SyncMode::kBuffered) {
    buffer_ += frame;
    if (buffer_.size() >= kBufferFlushBytes) return FlushBuffer();
    return Status::OK();
  }
  CROWDSKY_RETURN_NOT_OK(WriteAll(fd_, frame.data(), frame.size()));
  if (sync_ == SyncMode::kFsync) {
    if (::fdatasync(fd_) != 0) {
      return Status::IOError("journal fdatasync failed");
    }
    ++fsyncs_;
  }
  return Status::OK();
}

Status JournalWriter::FlushBuffer() {
  if (buffer_.empty() || fd_ < 0) return Status::OK();
  const Status st = WriteAll(fd_, buffer_.data(), buffer_.size());
  buffer_.clear();
  return st;
}

void JournalWriter::MaybeKillForTest() {
  if (kill_after_ <= 0 || appended_ < kill_after_) return;
  // The contract is "exactly N durable records": drain any buffer first,
  // optionally tear a fake in-flight record, and die without unwinding.
  (void)FlushBuffer();
  if (kill_tear_ > 0) {
    const std::string garbage(static_cast<size_t>(kill_tear_), '\xde');
    (void)WriteAll(fd_, garbage.data(), garbage.size());
  }
  std::_Exit(137);
}

Status JournalWriter::Append(const JournalRecord& record) {
  CROWDSKY_RETURN_NOT_OK(WriteFrame(EncodeRecord(record)));
  ++appended_;
  MaybeKillForTest();
  return Status::OK();
}

Status JournalWriter::Sync() {
  CROWDSKY_RETURN_NOT_OK(FlushBuffer());
  if (fd_ >= 0) {
    if (::fdatasync(fd_) != 0) {
      return Status::IOError("journal fdatasync failed");
    }
    ++fsyncs_;
  }
  return Status::OK();
}

Result<RecoveredJournal> ReadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("journal '" + path + "' does not exist");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string data = contents.str();

  if (data.size() < kHeaderBytes ||
      std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a crowdsky journal");
  }
  ByteReader header(std::string_view(data).substr(0, kHeaderBytes));
  for (size_t i = 0; i < sizeof kMagic; ++i) header.GetU8();
  const uint32_t version = header.GetU32();
  const uint64_t fingerprint = header.GetU64();
  const uint32_t header_crc = header.GetU32();
  if (version != kFormatVersion) {
    return Status::InvalidArgument("journal '" + path +
                                   "' has an unsupported format version");
  }
  if (header_crc != Crc32(data.data(), kHeaderBytes - 4)) {
    return Status::InvalidArgument("journal '" + path +
                                   "' has a corrupt header");
  }

  RecoveredJournal out;
  out.fingerprint = fingerprint;
  size_t pos = kHeaderBytes;
  while (true) {
    if (data.size() - pos < 8) break;  // no room for a frame prefix
    ByteReader frame(std::string_view(data).substr(pos, 8));
    const uint32_t payload_size = frame.GetU32();
    const uint32_t payload_crc = frame.GetU32();
    if (payload_size > kMaxPayloadBytes ||
        data.size() - pos - 8 < payload_size) {
      break;  // torn in-flight record
    }
    const std::string_view payload =
        std::string_view(data).substr(pos + 8, payload_size);
    if (Crc32(payload) != payload_crc) break;
    JournalRecord record;
    if (!DecodePayload(payload, &record)) break;
    out.records.push_back(std::move(record));
    pos += 8 + payload_size;
  }
  out.valid_bytes = static_cast<int64_t>(pos);
  out.torn_tail = pos < data.size();
  out.torn_bytes = static_cast<int64_t>(data.size() - pos);
  return out;
}

Status TruncateJournal(const std::string& path, int64_t valid_bytes) {
  if (valid_bytes < static_cast<int64_t>(kHeaderBytes)) {
    return Status::InvalidArgument(
        "refusing to truncate a journal below its header");
  }
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Status::IOError("cannot truncate journal '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace crowdsky::persist
