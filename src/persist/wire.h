// Minimal little-endian wire format helpers shared by the journal and
// checkpoint codecs, plus the CRC-32 (IEEE 802.3) used to checksum every
// on-disk frame. Header-only and dependency-free so both sides of the
// persist library (and its tests) can use them without extra linkage.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace crowdsky::persist {

/// CRC-32 (reflected polynomial 0xEDB88320) over `data`.
inline uint32_t Crc32(const void* data, size_t size) {
  static const auto table = [] {
    struct Table {
      uint32_t entries[256];
    } t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t.entries[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

inline uint32_t Crc32(std::string_view data) {
  return Crc32(data.data(), data.size());
}

/// Appends fixed-width little-endian fields to a byte buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutLe(&v, sizeof v); }
  void PutU64(uint64_t v) { PutLe(&v, sizeof v); }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    PutU64(bits);
  }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void PutLe(const void* v, size_t size) {
    // The toolchains this library targets are little-endian; memcpy of the
    // native representation is the little-endian encoding.
    buf_.append(static_cast<const char*>(v), size);
  }

  std::string buf_;
};

/// Reads fixed-width little-endian fields; any out-of-bounds read poisons
/// the reader (ok() goes false and every later Get returns 0).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t GetU8() {
    uint8_t v = 0;
    GetLe(&v, sizeof v);
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetLe(&v, sizeof v);
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetLe(&v, sizeof v);
    return v;
  }
  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetF64() {
    const uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  bool ok() const { return ok_; }
  /// True iff every byte was consumed and no read went out of bounds.
  bool exhausted() const { return ok_ && pos_ == data_.size(); }
  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  void GetLe(void* out, size_t size) {
    if (!ok_ || data_.size() - pos_ < size) {
      ok_ = false;
      return;
    }
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace crowdsky::persist
