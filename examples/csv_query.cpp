// CSV query: run a crowd-enabled skyline over your own data.
//
//   ./build/examples/csv_query mydata.csv [algorithm] [p_correct]
//
// The CSV header declares each column as name:kind:direction, e.g.
//   price:known:min,stars:known:max,comfort:crowd:max,label
// Crowd columns carry the hidden ground truth used by the simulated crowd
// (in a live deployment they would be blank and an adapter would post the
// questions to a real platform).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/crowdsky.h"

using namespace crowdsky;  // NOLINT

namespace {

Algorithm ParseAlgorithm(const char* name) {
  const struct {
    const char* name;
    Algorithm algo;
  } kTable[] = {
      {"baseline", Algorithm::kBaselineSort},
      {"bitonic", Algorithm::kBitonicSort},
      {"crowdsky", Algorithm::kCrowdSkySerial},
      {"pdset", Algorithm::kParallelDSet},
      {"psl", Algorithm::kParallelSL},
      {"unary", Algorithm::kUnary},
  };
  for (const auto& entry : kTable) {
    if (std::strcmp(entry.name, name) == 0) return entry.algo;
  }
  std::fprintf(stderr,
               "unknown algorithm '%s' (baseline|bitonic|crowdsky|pdset|"
               "psl|unary); using psl\n",
               name);
  return Algorithm::kParallelSL;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <data.csv> [baseline|bitonic|crowdsky|pdset|psl|"
                 "unary] [p_correct]\n",
                 argv[0]);
    return 2;
  }
  const Result<Dataset> loaded = ReadCsvFile(argv[1]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                 loaded.status().ToString().c_str());
    return 1;
  }
  EngineOptions options;
  options.algorithm =
      argc >= 3 ? ParseAlgorithm(argv[2]) : Algorithm::kParallelSL;
  options.worker.p_correct = argc >= 4 ? std::atof(argv[3]) : 0.9;

  const auto r = RunSkylineQuery(*loaded, options);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("skyline (%zu tuples):\n", r->algo.skyline.size());
  for (size_t i = 0; i < r->algo.skyline.size(); ++i) {
    const Tuple& t = loaded->tuple(r->algo.skyline[i]);
    std::printf("  #%d %s\n", t.id,
                t.label.empty() ? "(unlabeled)" : t.label.c_str());
  }
  std::printf(
      "%lld questions, %lld rounds, $%.2f; precision %.2f recall %.2f (vs "
      "embedded ground truth)\n",
      static_cast<long long>(r->algo.questions),
      static_cast<long long>(r->algo.rounds), r->cost_usd,
      r->accuracy.precision, r->accuracy.recall);
  return 0;
}
