// Marketplace campaign: running a skyline query against a realistic
// platform simulation — a persistent worker pool with heterogeneous
// reliability and spammers — and what "Masters-only" qualification (the
// paper's Section 6.2 setup) buys you.
#include <cstdio>

#include "core/crowdsky.h"

using namespace crowdsky;  // NOLINT

namespace {

void RunCampaign(const char* title, const Dataset& ds,
                 const MarketplaceOptions& market) {
  EngineOptions options;
  options.algorithm = Algorithm::kParallelSL;
  options.oracle = OracleKind::kMarketplace;
  options.marketplace = market;
  options.workers_per_question = 5;
  options.seed = 99;
  const auto r = RunSkylineQuery(ds, options);
  r.status().CheckOK();
  std::printf("%-28s precision %.2f  recall %.2f  cost $%.2f  rounds %lld\n",
              title, r->accuracy.precision, r->accuracy.recall, r->cost_usd,
              static_cast<long long>(r->algo.rounds));
}

}  // namespace

int main() {
  const Dataset movies = MakeMoviesDataset();
  std::printf(
      "Q2 (movie skyline) on a simulated marketplace of 300 workers:\n"
      "mean reliability 0.82 (sd 0.12), 20%% spammers.\n\n");

  MarketplaceOptions open_pool;
  open_pool.pool_size = 300;
  open_pool.population.p_correct = 0.82;
  open_pool.population.p_stddev = 0.12;
  open_pool.population.spammer_fraction = 0.2;

  MarketplaceOptions masters = open_pool;
  masters.gold_questions = 50;           // qualification test length
  masters.qualification_threshold = 0.8; // "Masters" bar

  RunCampaign("open pool:", movies, open_pool);
  RunCampaign("Masters qualification:", movies, masters);

  // Show what qualification did to the pool itself.
  CrowdMarketplace pool(movies, masters, VotingPolicy::MakeStatic(5));
  std::printf(
      "\nQualification admitted %d of %d workers; qualified-pool mean "
      "reliability %.3f.\n",
      pool.qualified_count(), pool.pool_size(),
      pool.QualifiedPoolReliability());
  std::printf(
      "This is why the paper restricted its AMT experiments to Masters "
      "workers.\n");
  return 0;
}
