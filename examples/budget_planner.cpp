// Budget planner: before launching a crowdsourcing campaign, estimate what
// each algorithm will cost and how long it will take on data that looks
// like yours — by simulating the campaign on synthetic data with matching
// shape (cardinality, dimensions, distribution).
#include <cstdio>
#include <string>

#include "core/crowdsky.h"

using namespace crowdsky;  // NOLINT

namespace {

void Plan(const char* scenario, DataDistribution dist, int cardinality,
          int num_known, double seconds_per_round) {
  GeneratorOptions gen;
  gen.cardinality = cardinality;
  gen.num_known = num_known;
  gen.num_crowd = 1;
  gen.distribution = dist;
  gen.seed = 99;
  const Dataset ds = GenerateDataset(gen).ValueOrDie();

  std::printf("\n--- %s (n=%d, |AK|=%d, %s) ---\n", scenario, cardinality,
              num_known, DataDistributionName(dist));
  std::printf("%-14s %10s %8s %9s %12s\n", "algorithm", "questions",
              "rounds", "cost($)", "est. hours");
  for (const Algorithm algo :
       {Algorithm::kBaselineSort, Algorithm::kCrowdSkySerial,
        Algorithm::kParallelDSet, Algorithm::kParallelSL}) {
    EngineOptions options;
    options.algorithm = algo;
    options.oracle = OracleKind::kPerfect;  // planning: count, don't err
    const auto r = RunSkylineQuery(ds, options);
    r.status().CheckOK();
    std::printf("%-14s %10lld %8lld %9.2f %12.1f\n", AlgorithmName(algo),
                static_cast<long long>(r->algo.questions),
                static_cast<long long>(r->algo.rounds), r->cost_usd,
                static_cast<double>(r->algo.rounds) * seconds_per_round /
                    3600.0);
  }
}

}  // namespace

int main() {
  std::printf(
      "Campaign planning: simulated question/round/cost estimates.\n"
      "Assuming one crowd round takes ~60 seconds (a HIT batch on AMT).\n");
  Plan("Product catalog triage", DataDistribution::kIndependent, 2000, 4,
       60);
  Plan("Conflicting-criteria shortlist", DataDistribution::kAntiCorrelated,
       1000, 2, 60);
  Plan("Small expert review", DataDistribution::kIndependent, 200, 3, 90);
  std::printf(
      "\nTakeaway: ParallelSL turns campaigns from days (Baseline) into "
      "minutes, at the lowest cost.\n");
  return 0;
}
