// Trace demo: capture a Chrome trace and a Prometheus metrics dump from a
// faulty, durable CrowdSky run.
//
// Runs ParallelSL against a simulated marketplace with fault injection and
// the answer journal on, with observability at full level, then writes
//   argv[1]  Chrome trace-event JSON  (open in chrome://tracing / Perfetto)
//   argv[2]  Prometheus text metrics  (the deterministic counter catalog)
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/trace_demo /tmp/crowdsky_trace.json /tmp/crowdsky.prom
#include <cstdio>
#include <filesystem>

#include "core/crowdsky.h"

using namespace crowdsky;  // NOLINT

int main(int argc, char** argv) {
  const char* trace_path =
      argc > 1 ? argv[1] : "crowdsky_trace.json";
  const char* metrics_path = argc > 2 ? argv[2] : "crowdsky_metrics.prom";

  GeneratorOptions gen;
  gen.cardinality = 150;
  gen.num_known = 3;
  gen.num_crowd = 2;
  gen.seed = 11;
  const Dataset dataset = GenerateDataset(gen).ValueOrDie();

  const std::filesystem::path journal_dir =
      std::filesystem::temp_directory_path() / "crowdsky_trace_demo";
  std::error_code ec;
  std::filesystem::remove_all(journal_dir, ec);

  EngineOptions options;
  options.algorithm = Algorithm::kParallelSL;
  // A realistic (faulty) marketplace so the trace shows retries, backoff
  // and degraded quorums, not just the happy path.
  options.oracle = OracleKind::kMarketplace;
  options.marketplace.pool_size = 80;
  options.marketplace.population.p_correct = 0.95;
  options.marketplace.faults.transient_error_rate = 0.05;
  options.marketplace.faults.worker_no_show_rate = 0.10;
  options.durability.dir = journal_dir.string();
  options.crowdsky.audit = true;  // also proves counters == ledgers
  options.obs.level = obs::ObsLevel::kFull;
  options.obs.trace_path = trace_path;
  options.obs.metrics_path = metrics_path;

  const auto r = RunSkylineQuery(dataset, options);
  r.status().CheckOK();

  std::printf("skyline size:   %zu of %d tuples\n", r->algo.skyline.size(),
              dataset.size());
  std::printf("questions:      %lld in %lld rounds ($%.2f)\n",
              static_cast<long long>(r->algo.questions),
              static_cast<long long>(r->algo.rounds), r->cost_usd);
  std::printf("retries:        %lld (%lld failed attempts)\n",
              static_cast<long long>(r->algo.retries),
              static_cast<long long>(r->algo.failed_attempts));
  std::printf("journal:        %lld records\n",
              static_cast<long long>(r->durability.journal_records));
  std::printf("trace events:   %lld -> %s\n",
              static_cast<long long>(r->obs.trace_events), trace_path);
  std::printf("counters:       %zu -> %s\n", r->obs.counters.size(),
              metrics_path);
  std::filesystem::remove_all(journal_dir, ec);
  return 0;
}
