// Quickstart: the motivating example of the paper's introduction.
//
// Alice wants the skyline of movies by (box_office MAX, romantic MAX), but
// "how romantic is this movie?" is not in the database — only humans can
// judge it. CrowdSky asks the (simulated) crowd pair-wise questions and
// returns the complete skyline while paying for as few questions as
// possible.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/crowdsky.h"

using namespace crowdsky;  // NOLINT

int main() {
  // 1. Declare the schema: one known attribute and one crowd attribute.
  auto schema = Schema::Make({
      {"box_office", Direction::kMax, AttributeKind::kKnown},
      {"romantic", Direction::kMax, AttributeKind::kCrowd},
  });
  schema.status().CheckOK();

  // 2. The relation. The `romantic` column is the hidden ground truth the
  //    simulated crowd answers from — a real deployment would replace
  //    SimulatedCrowd with an adapter to a crowdsourcing platform.
  auto data = Dataset::Make(
      std::move(schema).ValueOrDie(),
      {
          {2788, 2.0},  // Avatar: huge gross, not very romantic
          {836, 6.0},   // Inception
          {658, 9.5},   // Titanic-ish romance: modest gross, very romantic
          {120, 9.0},   // indie romance
          {90, 3.0},    // low gross, not romantic: hopeless
          {1519, 4.0},  // The Avengers
          {400, 8.0},   // romantic comedy
      },
      {"Avatar", "Inception", "The Notebook", "Before Sunrise",
       "Sharknado", "The Avengers", "Crazy Rich Asians"});
  data.status().CheckOK();
  const Dataset movies = std::move(data).ValueOrDie();

  // 3. Configure the engine: ParallelSL (lowest latency), a crowd of
  //    80%-reliable workers, 5-worker majority voting.
  EngineOptions options;
  options.algorithm = Algorithm::kParallelSL;
  options.worker.p_correct = 0.8;
  options.workers_per_question = 5;
  options.seed = 7;

  const Result<EngineResult> result = RunSkylineQuery(movies, options);
  result.status().CheckOK();

  std::printf("Crowdsourced skyline (most popular x most romantic):\n");
  for (const std::string& label : result->skyline_labels) {
    std::printf("  * %s\n", label.c_str());
  }
  std::printf(
      "\nCrowd effort: %lld questions in %lld rounds, %lld worker answers, "
      "$%.2f\n",
      static_cast<long long>(result->algo.questions),
      static_cast<long long>(result->algo.rounds),
      static_cast<long long>(result->algo.worker_answers),
      result->cost_usd);
  std::printf("Accuracy vs ground truth: precision %.2f, recall %.2f\n",
              result->accuracy.precision, result->accuracy.recall);
  return 0;
}
