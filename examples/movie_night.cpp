// Movie night: the paper's Q2 on the embedded 50-movie dataset.
// Compares all algorithms on cost, latency and accuracy, showing why
// CrowdSky + ParallelSL is the recommended configuration.
#include <cstdio>

#include "core/crowdsky.h"

using namespace crowdsky;  // NOLINT

int main() {
  const Dataset movies = MakeMoviesDataset();
  std::printf(
      "Q2: SELECT * FROM movies SKYLINE OF box_office MAX, year MAX, "
      "rating(crowd) MAX\n%d movies, crowd judges the ratings\n\n",
      movies.size());

  const Algorithm algos[] = {Algorithm::kBaselineSort, Algorithm::kUnary,
                             Algorithm::kCrowdSkySerial,
                             Algorithm::kParallelDSet, Algorithm::kParallelSL};
  std::printf("%-14s %10s %8s %8s %10s %10s\n", "algorithm", "questions",
              "rounds", "cost($)", "precision", "recall");
  for (const Algorithm algo : algos) {
    EngineOptions options;
    options.algorithm = algo;
    options.worker.p_correct = 0.95;  // Masters-grade workers
    options.workers_per_question = 5;
    options.seed = 2016;
    const auto r = RunSkylineQuery(movies, options);
    r.status().CheckOK();
    std::printf("%-14s %10lld %8lld %8.2f %10.2f %10.2f\n",
                AlgorithmName(algo),
                static_cast<long long>(r->algo.questions),
                static_cast<long long>(r->algo.rounds), r->cost_usd,
                r->accuracy.precision, r->accuracy.recall);
  }

  EngineOptions best;
  best.algorithm = Algorithm::kParallelSL;
  best.worker.p_correct = 0.95;
  best.seed = 2016;
  const auto r = RunSkylineQuery(movies, best);
  r.status().CheckOK();
  std::printf("\nSkyline movies according to the crowd:\n");
  for (const std::string& label : r->skyline_labels) {
    std::printf("  * %s\n", label.c_str());
  }
  return 0;
}
