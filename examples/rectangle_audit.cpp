// Rectangle audit: the paper's Q1, the one query with exact ground truth.
// Demonstrates how crowd reliability and voting interact: we sweep the
// per-worker accuracy p and report skyline precision/recall with single
// workers vs 5-worker majority voting.
#include <cstdio>

#include "core/crowdsky.h"

using namespace crowdsky;  // NOLINT

namespace {

AccuracyMetrics RunOnce(const Dataset& ds, double p, int workers,
                        uint64_t seed) {
  EngineOptions options;
  options.algorithm = Algorithm::kCrowdSkySerial;
  options.worker.p_correct = p;
  options.workers_per_question = workers;
  options.seed = seed;
  const auto r = RunSkylineQuery(ds, options);
  r.status().CheckOK();
  return r->accuracy;
}

}  // namespace

int main() {
  const Dataset rects = MakeRectanglesDataset();
  std::printf(
      "Q1: 50 randomly rotated rectangles; machine sees the rotated "
      "bounding box,\nthe crowd compares true areas. Exact ground truth "
      "exists, so accuracy is measurable.\n\n");

  std::printf("%8s %14s %14s %14s %14s\n", "p", "F1 (1 worker)",
              "F1 (5 voted)", "P (5 voted)", "R (5 voted)");
  const int kRuns = 5;
  for (const double p : {0.6, 0.7, 0.8, 0.9, 0.95, 1.0}) {
    double f1_single = 0, f1_voted = 0, prec = 0, rec = 0;
    for (int run = 0; run < kRuns; ++run) {
      const uint64_t seed = 100 + static_cast<uint64_t>(run);
      f1_single += RunOnce(rects, p, 1, seed).f1;
      const AccuracyMetrics voted = RunOnce(rects, p, 5, seed);
      f1_voted += voted.f1;
      prec += voted.precision;
      rec += voted.recall;
    }
    std::printf("%8.2f %14.3f %14.3f %14.3f %14.3f\n", p,
                f1_single / kRuns, f1_voted / kRuns, prec / kRuns,
                rec / kRuns);
  }
  std::printf(
      "\nWith reliable (Masters-grade) workers and voting, precision and "
      "recall reach 1.0 —\nthe paper's Q1 result.\n");
  return 0;
}
