// MLB scouting: the paper's Q3. Find the pitchers nobody objectively beats
// — stats the machine compares (wins, strikeouts, ERA), perceived value
// the crowd judges — and check them against the 2013 Cy Young vote.
#include <cstdio>

#include "core/crowdsky.h"

using namespace crowdsky;  // NOLINT

int main() {
  const Dataset pitchers = MakeMlbPitchersDataset();
  std::printf(
      "Q3: skyline of 2013 MLB starters on wins MAX, strikeouts MAX, "
      "ERA MIN, value(crowd) MAX\n\n");

  EngineOptions options;
  options.algorithm = Algorithm::kParallelSL;
  options.worker.p_correct = 0.9;
  options.workers_per_question = 5;
  options.dynamic_voting = true;  // spend workers where it matters
  options.seed = 13;

  const auto r = RunSkylineQuery(pitchers, options);
  r.status().CheckOK();

  std::printf("Skyline pitchers (crowd-judged):\n");
  for (const int id : r->algo.skyline) {
    const Tuple& t = pitchers.tuple(id);
    std::printf("  * %-18s W=%2.0f SO=%3.0f ERA=%.2f\n", t.label.c_str(),
                t.values[0], t.values[1], t.values[2]);
  }
  std::printf(
      "\n(2013 Cy Young winners: Clayton Kershaw (NL) and Max Scherzer "
      "(AL);\n Darvish and Colon were candidates — the paper validates "
      "against exactly this list.)\n");
  std::printf(
      "\nEffort: %lld questions, %lld rounds, $%.2f; precision %.2f / "
      "recall %.2f\n",
      static_cast<long long>(r->algo.questions),
      static_cast<long long>(r->algo.rounds), r->cost_usd,
      r->accuracy.precision, r->accuracy.recall);
  return 0;
}
