// Multi-query service demo: several skyline campaigns share one crowd.
//
// Three teams each want a skyline over their own data. Run alone, each
// campaign pays the paper's cost formula — and every partially-filled HIT
// rounds up. Submitted together through RunService, same-round questions
// from different campaigns share HITs, and the service's packing ledger
// shows exactly what the sharing saved.
//
// Usage: service_demo [num_queries] [budget_usd]
//   num_queries  concurrent campaigns to submit (default 3)
//   budget_usd   optional service-wide budget split evenly across them
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/crowdsky.h"
#include "service/service.h"

using namespace crowdsky;  // NOLINT

int main(int argc, char** argv) {
  const int num_queries = argc > 1 ? std::atoi(argv[1]) : 3;
  const double budget_usd = argc > 2 ? std::atof(argv[2]) : 0.0;
  if (num_queries < 1) {
    std::fprintf(stderr, "usage: %s [num_queries>=1] [budget_usd]\n",
                 argv[0]);
    return 2;
  }

  // Each campaign: its own dataset, driver and seed. The serial driver
  // (one question per round) benefits the most from sharing; ParallelSL
  // shows that wide rounds pack too.
  const Algorithm drivers[] = {Algorithm::kCrowdSkySerial,
                               Algorithm::kParallelSL,
                               Algorithm::kParallelDSet};
  std::vector<Dataset> datasets;
  datasets.reserve(static_cast<size_t>(num_queries));
  std::vector<service::ServiceQuery> queries;
  for (int i = 0; i < num_queries; ++i) {
    GeneratorOptions gen;
    gen.cardinality = 60 + 20 * (i % 3);
    gen.num_known = 2;
    gen.num_crowd = 1;
    gen.seed = uint64_t{100} + static_cast<uint64_t>(i);
    datasets.push_back(GenerateDataset(gen).ValueOrDie());

    service::ServiceQuery query;
    query.dataset = &datasets.back();
    query.options.algorithm = drivers[i % 3];
    query.options.oracle = OracleKind::kPerfect;
    query.options.seed = gen.seed;
    query.label = "campaign" + std::to_string(i);
    queries.push_back(query);
  }

  service::ServiceOptions options;
  options.max_concurrent = num_queries;
  options.total_budget_usd = budget_usd;
  options.audit = true;  // prove the ledger before printing it
  const auto report = service::RunService(queries, options);
  report.status().CheckOK();

  std::printf("%-12s %-12s %9s %7s %8s %9s %7s\n", "campaign", "driver",
              "questions", "rounds", "cost($)", "skyline", "cap($)");
  for (const service::QueryOutcome& outcome : report->queries) {
    const AlgoResult& algo = outcome.result.algo;
    std::printf("%-12s %-12s %9lld %7lld %8.2f %9zu %7.2f\n",
                outcome.label.c_str(),
                AlgorithmName(queries[static_cast<size_t>(outcome.query_id)]
                                  .options.algorithm),
                static_cast<long long>(algo.questions),
                static_cast<long long>(algo.rounds), outcome.result.cost_usd,
                algo.skyline.size(), outcome.budget_slice_usd);
  }

  const service::PackingLedger& packing = report->packing;
  std::printf("\nShared-crowd ledger (%lld epochs, %lld question slots):\n",
              static_cast<long long>(packing.epochs),
              static_cast<long long>(packing.slots));
  std::printf("  isolated: %5lld HITs  $%.2f   (each campaign alone)\n",
              static_cast<long long>(packing.isolated_hits),
              packing.cost_isolated_usd);
  std::printf("  packed:   %5lld HITs  $%.2f   (shared HITs)\n",
              static_cast<long long>(packing.packed_hits),
              packing.cost_packed_usd);
  std::printf("  saved:    $%.2f (%.0f%%)\n", packing.cost_saved_usd,
              packing.cost_isolated_usd > 0.0
                  ? 100.0 * packing.cost_saved_usd /
                        packing.cost_isolated_usd
                  : 0.0);
  return 0;
}
