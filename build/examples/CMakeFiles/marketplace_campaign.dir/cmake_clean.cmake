file(REMOVE_RECURSE
  "CMakeFiles/marketplace_campaign.dir/marketplace_campaign.cpp.o"
  "CMakeFiles/marketplace_campaign.dir/marketplace_campaign.cpp.o.d"
  "marketplace_campaign"
  "marketplace_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
