# Empty compiler generated dependencies file for marketplace_campaign.
# This may be replaced when dependencies are built.
