file(REMOVE_RECURSE
  "CMakeFiles/rectangle_audit.dir/rectangle_audit.cpp.o"
  "CMakeFiles/rectangle_audit.dir/rectangle_audit.cpp.o.d"
  "rectangle_audit"
  "rectangle_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rectangle_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
