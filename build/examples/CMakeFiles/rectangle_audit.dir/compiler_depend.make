# Empty compiler generated dependencies file for rectangle_audit.
# This may be replaced when dependencies are built.
