file(REMOVE_RECURSE
  "CMakeFiles/mlb_scouting.dir/mlb_scouting.cpp.o"
  "CMakeFiles/mlb_scouting.dir/mlb_scouting.cpp.o.d"
  "mlb_scouting"
  "mlb_scouting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlb_scouting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
