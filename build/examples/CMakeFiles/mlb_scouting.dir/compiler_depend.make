# Empty compiler generated dependencies file for mlb_scouting.
# This may be replaced when dependencies are built.
