# Empty compiler generated dependencies file for movie_night.
# This may be replaced when dependencies are built.
