file(REMOVE_RECURSE
  "CMakeFiles/toy_walkthrough.dir/toy_walkthrough.cc.o"
  "CMakeFiles/toy_walkthrough.dir/toy_walkthrough.cc.o.d"
  "toy_walkthrough"
  "toy_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toy_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
