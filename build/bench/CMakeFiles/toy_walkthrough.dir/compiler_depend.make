# Empty compiler generated dependencies file for toy_walkthrough.
# This may be replaced when dependencies are built.
