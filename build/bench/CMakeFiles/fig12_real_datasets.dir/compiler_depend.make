# Empty compiler generated dependencies file for fig12_real_datasets.
# This may be replaced when dependencies are built.
