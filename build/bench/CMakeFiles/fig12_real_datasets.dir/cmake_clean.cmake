file(REMOVE_RECURSE
  "CMakeFiles/fig12_real_datasets.dir/fig12_real_datasets.cc.o"
  "CMakeFiles/fig12_real_datasets.dir/fig12_real_datasets.cc.o.d"
  "fig12_real_datasets"
  "fig12_real_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_real_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
