# Empty dependencies file for fig6_questions_ind.
# This may be replaced when dependencies are built.
