file(REMOVE_RECURSE
  "CMakeFiles/fig6_questions_ind.dir/fig6_questions_ind.cc.o"
  "CMakeFiles/fig6_questions_ind.dir/fig6_questions_ind.cc.o.d"
  "fig6_questions_ind"
  "fig6_questions_ind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_questions_ind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
