file(REMOVE_RECURSE
  "CMakeFiles/fig10_voting_accuracy.dir/fig10_voting_accuracy.cc.o"
  "CMakeFiles/fig10_voting_accuracy.dir/fig10_voting_accuracy.cc.o.d"
  "fig10_voting_accuracy"
  "fig10_voting_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_voting_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
