# Empty dependencies file for fig8_rounds_cardinality.
# This may be replaced when dependencies are built.
