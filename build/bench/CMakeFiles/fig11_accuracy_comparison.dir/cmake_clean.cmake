file(REMOVE_RECURSE
  "CMakeFiles/fig11_accuracy_comparison.dir/fig11_accuracy_comparison.cc.o"
  "CMakeFiles/fig11_accuracy_comparison.dir/fig11_accuracy_comparison.cc.o.d"
  "fig11_accuracy_comparison"
  "fig11_accuracy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_accuracy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
