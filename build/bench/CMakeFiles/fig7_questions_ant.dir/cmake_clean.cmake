file(REMOVE_RECURSE
  "CMakeFiles/fig7_questions_ant.dir/fig7_questions_ant.cc.o"
  "CMakeFiles/fig7_questions_ant.dir/fig7_questions_ant.cc.o.d"
  "fig7_questions_ant"
  "fig7_questions_ant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_questions_ant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
