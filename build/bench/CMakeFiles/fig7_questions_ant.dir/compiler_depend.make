# Empty compiler generated dependencies file for fig7_questions_ant.
# This may be replaced when dependencies are built.
