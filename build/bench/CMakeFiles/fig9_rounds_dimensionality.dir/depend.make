# Empty dependencies file for fig9_rounds_dimensionality.
# This may be replaced when dependencies are built.
