file(REMOVE_RECURSE
  "CMakeFiles/fig9_rounds_dimensionality.dir/fig9_rounds_dimensionality.cc.o"
  "CMakeFiles/fig9_rounds_dimensionality.dir/fig9_rounds_dimensionality.cc.o.d"
  "fig9_rounds_dimensionality"
  "fig9_rounds_dimensionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_rounds_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
