# Empty dependencies file for preference_graph_property_test.
# This may be replaced when dependencies are built.
