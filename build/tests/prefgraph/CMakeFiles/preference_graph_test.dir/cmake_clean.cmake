file(REMOVE_RECURSE
  "CMakeFiles/preference_graph_test.dir/preference_graph_test.cc.o"
  "CMakeFiles/preference_graph_test.dir/preference_graph_test.cc.o.d"
  "preference_graph_test"
  "preference_graph_test.pdb"
  "preference_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preference_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
