# Empty dependencies file for preference_graph_test.
# This may be replaced when dependencies are built.
