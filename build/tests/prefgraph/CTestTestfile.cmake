# CMake generated Testfile for 
# Source directory: /root/repo/tests/prefgraph
# Build directory: /root/repo/build/tests/prefgraph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/prefgraph/preference_graph_test[1]_include.cmake")
include("/root/repo/build/tests/prefgraph/preference_graph_property_test[1]_include.cmake")
