file(REMOVE_RECURSE
  "CMakeFiles/real_world_test.dir/real_world_test.cc.o"
  "CMakeFiles/real_world_test.dir/real_world_test.cc.o.d"
  "real_world_test"
  "real_world_test.pdb"
  "real_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
