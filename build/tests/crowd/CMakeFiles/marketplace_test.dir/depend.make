# Empty dependencies file for marketplace_test.
# This may be replaced when dependencies are built.
