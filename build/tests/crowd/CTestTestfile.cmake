# CMake generated Testfile for 
# Source directory: /root/repo/tests/crowd
# Build directory: /root/repo/build/tests/crowd
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crowd/voting_test[1]_include.cmake")
include("/root/repo/build/tests/crowd/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/crowd/session_test[1]_include.cmake")
include("/root/repo/build/tests/crowd/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/crowd/marketplace_test[1]_include.cmake")
