# CMake generated Testfile for 
# Source directory: /root/repo/tests/data
# Build directory: /root/repo/build/tests/data
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/data/schema_test[1]_include.cmake")
include("/root/repo/build/tests/data/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/data/generator_test[1]_include.cmake")
include("/root/repo/build/tests/data/csv_test[1]_include.cmake")
include("/root/repo/build/tests/data/toy_test[1]_include.cmake")
include("/root/repo/build/tests/data/real_datasets_test[1]_include.cmake")
