file(REMOVE_RECURSE
  "CMakeFiles/toy_test.dir/toy_test.cc.o"
  "CMakeFiles/toy_test.dir/toy_test.cc.o.d"
  "toy_test"
  "toy_test.pdb"
  "toy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
