# Empty dependencies file for toy_test.
# This may be replaced when dependencies are built.
