file(REMOVE_RECURSE
  "CMakeFiles/real_datasets_test.dir/real_datasets_test.cc.o"
  "CMakeFiles/real_datasets_test.dir/real_datasets_test.cc.o.d"
  "real_datasets_test"
  "real_datasets_test.pdb"
  "real_datasets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_datasets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
