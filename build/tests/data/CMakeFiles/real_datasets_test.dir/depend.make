# Empty dependencies file for real_datasets_test.
# This may be replaced when dependencies are built.
