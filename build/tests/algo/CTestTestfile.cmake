# CMake generated Testfile for 
# Source directory: /root/repo/tests/algo
# Build directory: /root/repo/build/tests/algo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/algo/crowd_knowledge_test[1]_include.cmake")
include("/root/repo/build/tests/algo/toy_walkthrough_test[1]_include.cmake")
include("/root/repo/build/tests/algo/correctness_test[1]_include.cmake")
include("/root/repo/build/tests/algo/pruning_test[1]_include.cmake")
include("/root/repo/build/tests/algo/baseline_sort_test[1]_include.cmake")
include("/root/repo/build/tests/algo/unary_test[1]_include.cmake")
include("/root/repo/build/tests/algo/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/algo/latency_test[1]_include.cmake")
include("/root/repo/build/tests/algo/noisy_test[1]_include.cmake")
include("/root/repo/build/tests/algo/budget_test[1]_include.cmake")
include("/root/repo/build/tests/algo/round_robin_test[1]_include.cmake")
include("/root/repo/build/tests/algo/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/algo/partial_knowledge_test[1]_include.cmake")
