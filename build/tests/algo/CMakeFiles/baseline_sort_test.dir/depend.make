# Empty dependencies file for baseline_sort_test.
# This may be replaced when dependencies are built.
