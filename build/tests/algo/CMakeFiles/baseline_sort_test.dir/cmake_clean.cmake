file(REMOVE_RECURSE
  "CMakeFiles/baseline_sort_test.dir/baseline_sort_test.cc.o"
  "CMakeFiles/baseline_sort_test.dir/baseline_sort_test.cc.o.d"
  "baseline_sort_test"
  "baseline_sort_test.pdb"
  "baseline_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
