# Empty dependencies file for noisy_test.
# This may be replaced when dependencies are built.
