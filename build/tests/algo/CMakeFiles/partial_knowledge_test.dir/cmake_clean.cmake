file(REMOVE_RECURSE
  "CMakeFiles/partial_knowledge_test.dir/partial_knowledge_test.cc.o"
  "CMakeFiles/partial_knowledge_test.dir/partial_knowledge_test.cc.o.d"
  "partial_knowledge_test"
  "partial_knowledge_test.pdb"
  "partial_knowledge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_knowledge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
