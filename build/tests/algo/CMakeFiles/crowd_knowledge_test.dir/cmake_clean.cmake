file(REMOVE_RECURSE
  "CMakeFiles/crowd_knowledge_test.dir/crowd_knowledge_test.cc.o"
  "CMakeFiles/crowd_knowledge_test.dir/crowd_knowledge_test.cc.o.d"
  "crowd_knowledge_test"
  "crowd_knowledge_test.pdb"
  "crowd_knowledge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_knowledge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
