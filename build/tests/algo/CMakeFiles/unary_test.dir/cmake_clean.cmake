file(REMOVE_RECURSE
  "CMakeFiles/unary_test.dir/unary_test.cc.o"
  "CMakeFiles/unary_test.dir/unary_test.cc.o.d"
  "unary_test"
  "unary_test.pdb"
  "unary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
