# Empty dependencies file for unary_test.
# This may be replaced when dependencies are built.
