
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algo/round_robin_test.cc" "tests/algo/CMakeFiles/round_robin_test.dir/round_robin_test.cc.o" "gcc" "tests/algo/CMakeFiles/round_robin_test.dir/round_robin_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/crowdsky_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/crowdsky_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/crowdsky_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/prefgraph/CMakeFiles/crowdsky_prefgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/skyline/CMakeFiles/crowdsky_skyline.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/crowdsky_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crowdsky_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
