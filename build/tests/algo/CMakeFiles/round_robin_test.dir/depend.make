# Empty dependencies file for round_robin_test.
# This may be replaced when dependencies are built.
