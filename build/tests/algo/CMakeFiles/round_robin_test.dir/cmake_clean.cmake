file(REMOVE_RECURSE
  "CMakeFiles/round_robin_test.dir/round_robin_test.cc.o"
  "CMakeFiles/round_robin_test.dir/round_robin_test.cc.o.d"
  "round_robin_test"
  "round_robin_test.pdb"
  "round_robin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_robin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
