# Empty dependencies file for toy_walkthrough_test.
# This may be replaced when dependencies are built.
