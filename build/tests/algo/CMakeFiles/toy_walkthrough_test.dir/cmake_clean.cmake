file(REMOVE_RECURSE
  "CMakeFiles/toy_walkthrough_test.dir/toy_walkthrough_test.cc.o"
  "CMakeFiles/toy_walkthrough_test.dir/toy_walkthrough_test.cc.o.d"
  "toy_walkthrough_test"
  "toy_walkthrough_test.pdb"
  "toy_walkthrough_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toy_walkthrough_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
