file(REMOVE_RECURSE
  "CMakeFiles/dominance_structure_test.dir/dominance_structure_test.cc.o"
  "CMakeFiles/dominance_structure_test.dir/dominance_structure_test.cc.o.d"
  "dominance_structure_test"
  "dominance_structure_test.pdb"
  "dominance_structure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dominance_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
