# Empty compiler generated dependencies file for dominance_structure_test.
# This may be replaced when dependencies are built.
