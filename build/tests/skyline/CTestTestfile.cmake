# CMake generated Testfile for 
# Source directory: /root/repo/tests/skyline
# Build directory: /root/repo/build/tests/skyline
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/skyline/dominance_test[1]_include.cmake")
include("/root/repo/build/tests/skyline/skyline_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/skyline/dominance_structure_test[1]_include.cmake")
