file(REMOVE_RECURSE
  "CMakeFiles/crowdsky_crowd.dir/marketplace.cc.o"
  "CMakeFiles/crowdsky_crowd.dir/marketplace.cc.o.d"
  "CMakeFiles/crowdsky_crowd.dir/oracle.cc.o"
  "CMakeFiles/crowdsky_crowd.dir/oracle.cc.o.d"
  "CMakeFiles/crowdsky_crowd.dir/session.cc.o"
  "CMakeFiles/crowdsky_crowd.dir/session.cc.o.d"
  "CMakeFiles/crowdsky_crowd.dir/voting.cc.o"
  "CMakeFiles/crowdsky_crowd.dir/voting.cc.o.d"
  "libcrowdsky_crowd.a"
  "libcrowdsky_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsky_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
