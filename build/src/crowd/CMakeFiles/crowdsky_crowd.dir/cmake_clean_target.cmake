file(REMOVE_RECURSE
  "libcrowdsky_crowd.a"
)
