# Empty compiler generated dependencies file for crowdsky_crowd.
# This may be replaced when dependencies are built.
