
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crowd/marketplace.cc" "src/crowd/CMakeFiles/crowdsky_crowd.dir/marketplace.cc.o" "gcc" "src/crowd/CMakeFiles/crowdsky_crowd.dir/marketplace.cc.o.d"
  "/root/repo/src/crowd/oracle.cc" "src/crowd/CMakeFiles/crowdsky_crowd.dir/oracle.cc.o" "gcc" "src/crowd/CMakeFiles/crowdsky_crowd.dir/oracle.cc.o.d"
  "/root/repo/src/crowd/session.cc" "src/crowd/CMakeFiles/crowdsky_crowd.dir/session.cc.o" "gcc" "src/crowd/CMakeFiles/crowdsky_crowd.dir/session.cc.o.d"
  "/root/repo/src/crowd/voting.cc" "src/crowd/CMakeFiles/crowdsky_crowd.dir/voting.cc.o" "gcc" "src/crowd/CMakeFiles/crowdsky_crowd.dir/voting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crowdsky_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/crowdsky_data.dir/DependInfo.cmake"
  "/root/repo/build/src/skyline/CMakeFiles/crowdsky_skyline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
