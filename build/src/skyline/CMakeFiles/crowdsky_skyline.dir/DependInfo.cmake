
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skyline/algorithms.cc" "src/skyline/CMakeFiles/crowdsky_skyline.dir/algorithms.cc.o" "gcc" "src/skyline/CMakeFiles/crowdsky_skyline.dir/algorithms.cc.o.d"
  "/root/repo/src/skyline/dominance.cc" "src/skyline/CMakeFiles/crowdsky_skyline.dir/dominance.cc.o" "gcc" "src/skyline/CMakeFiles/crowdsky_skyline.dir/dominance.cc.o.d"
  "/root/repo/src/skyline/dominance_structure.cc" "src/skyline/CMakeFiles/crowdsky_skyline.dir/dominance_structure.cc.o" "gcc" "src/skyline/CMakeFiles/crowdsky_skyline.dir/dominance_structure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crowdsky_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/crowdsky_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
