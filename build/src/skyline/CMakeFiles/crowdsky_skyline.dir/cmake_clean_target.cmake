file(REMOVE_RECURSE
  "libcrowdsky_skyline.a"
)
