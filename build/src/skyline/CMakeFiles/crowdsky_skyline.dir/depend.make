# Empty dependencies file for crowdsky_skyline.
# This may be replaced when dependencies are built.
