file(REMOVE_RECURSE
  "CMakeFiles/crowdsky_skyline.dir/algorithms.cc.o"
  "CMakeFiles/crowdsky_skyline.dir/algorithms.cc.o.d"
  "CMakeFiles/crowdsky_skyline.dir/dominance.cc.o"
  "CMakeFiles/crowdsky_skyline.dir/dominance.cc.o.d"
  "CMakeFiles/crowdsky_skyline.dir/dominance_structure.cc.o"
  "CMakeFiles/crowdsky_skyline.dir/dominance_structure.cc.o.d"
  "libcrowdsky_skyline.a"
  "libcrowdsky_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsky_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
