# Empty compiler generated dependencies file for crowdsky_prefgraph.
# This may be replaced when dependencies are built.
