file(REMOVE_RECURSE
  "libcrowdsky_prefgraph.a"
)
