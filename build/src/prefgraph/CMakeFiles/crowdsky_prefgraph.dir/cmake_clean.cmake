file(REMOVE_RECURSE
  "CMakeFiles/crowdsky_prefgraph.dir/preference_graph.cc.o"
  "CMakeFiles/crowdsky_prefgraph.dir/preference_graph.cc.o.d"
  "libcrowdsky_prefgraph.a"
  "libcrowdsky_prefgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsky_prefgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
