# CMake generated Testfile for 
# Source directory: /root/repo/src/prefgraph
# Build directory: /root/repo/build/src/prefgraph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
