
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/baseline_sort.cc" "src/algo/CMakeFiles/crowdsky_algo.dir/baseline_sort.cc.o" "gcc" "src/algo/CMakeFiles/crowdsky_algo.dir/baseline_sort.cc.o.d"
  "/root/repo/src/algo/crowd_knowledge.cc" "src/algo/CMakeFiles/crowdsky_algo.dir/crowd_knowledge.cc.o" "gcc" "src/algo/CMakeFiles/crowdsky_algo.dir/crowd_knowledge.cc.o.d"
  "/root/repo/src/algo/crowdsky_algorithm.cc" "src/algo/CMakeFiles/crowdsky_algo.dir/crowdsky_algorithm.cc.o" "gcc" "src/algo/CMakeFiles/crowdsky_algo.dir/crowdsky_algorithm.cc.o.d"
  "/root/repo/src/algo/evaluator.cc" "src/algo/CMakeFiles/crowdsky_algo.dir/evaluator.cc.o" "gcc" "src/algo/CMakeFiles/crowdsky_algo.dir/evaluator.cc.o.d"
  "/root/repo/src/algo/metrics.cc" "src/algo/CMakeFiles/crowdsky_algo.dir/metrics.cc.o" "gcc" "src/algo/CMakeFiles/crowdsky_algo.dir/metrics.cc.o.d"
  "/root/repo/src/algo/parallel_dset.cc" "src/algo/CMakeFiles/crowdsky_algo.dir/parallel_dset.cc.o" "gcc" "src/algo/CMakeFiles/crowdsky_algo.dir/parallel_dset.cc.o.d"
  "/root/repo/src/algo/parallel_sl.cc" "src/algo/CMakeFiles/crowdsky_algo.dir/parallel_sl.cc.o" "gcc" "src/algo/CMakeFiles/crowdsky_algo.dir/parallel_sl.cc.o.d"
  "/root/repo/src/algo/unary.cc" "src/algo/CMakeFiles/crowdsky_algo.dir/unary.cc.o" "gcc" "src/algo/CMakeFiles/crowdsky_algo.dir/unary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crowdsky_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/crowdsky_data.dir/DependInfo.cmake"
  "/root/repo/build/src/skyline/CMakeFiles/crowdsky_skyline.dir/DependInfo.cmake"
  "/root/repo/build/src/prefgraph/CMakeFiles/crowdsky_prefgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/crowdsky_crowd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
