file(REMOVE_RECURSE
  "libcrowdsky_algo.a"
)
