file(REMOVE_RECURSE
  "CMakeFiles/crowdsky_algo.dir/baseline_sort.cc.o"
  "CMakeFiles/crowdsky_algo.dir/baseline_sort.cc.o.d"
  "CMakeFiles/crowdsky_algo.dir/crowd_knowledge.cc.o"
  "CMakeFiles/crowdsky_algo.dir/crowd_knowledge.cc.o.d"
  "CMakeFiles/crowdsky_algo.dir/crowdsky_algorithm.cc.o"
  "CMakeFiles/crowdsky_algo.dir/crowdsky_algorithm.cc.o.d"
  "CMakeFiles/crowdsky_algo.dir/evaluator.cc.o"
  "CMakeFiles/crowdsky_algo.dir/evaluator.cc.o.d"
  "CMakeFiles/crowdsky_algo.dir/metrics.cc.o"
  "CMakeFiles/crowdsky_algo.dir/metrics.cc.o.d"
  "CMakeFiles/crowdsky_algo.dir/parallel_dset.cc.o"
  "CMakeFiles/crowdsky_algo.dir/parallel_dset.cc.o.d"
  "CMakeFiles/crowdsky_algo.dir/parallel_sl.cc.o"
  "CMakeFiles/crowdsky_algo.dir/parallel_sl.cc.o.d"
  "CMakeFiles/crowdsky_algo.dir/unary.cc.o"
  "CMakeFiles/crowdsky_algo.dir/unary.cc.o.d"
  "libcrowdsky_algo.a"
  "libcrowdsky_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsky_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
