# Empty dependencies file for crowdsky_algo.
# This may be replaced when dependencies are built.
