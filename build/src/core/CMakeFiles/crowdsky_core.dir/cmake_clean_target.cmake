file(REMOVE_RECURSE
  "libcrowdsky_core.a"
)
