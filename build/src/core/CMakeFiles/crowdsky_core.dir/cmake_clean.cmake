file(REMOVE_RECURSE
  "CMakeFiles/crowdsky_core.dir/engine.cc.o"
  "CMakeFiles/crowdsky_core.dir/engine.cc.o.d"
  "libcrowdsky_core.a"
  "libcrowdsky_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsky_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
