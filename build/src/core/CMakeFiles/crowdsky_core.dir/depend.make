# Empty dependencies file for crowdsky_core.
# This may be replaced when dependencies are built.
