# Empty compiler generated dependencies file for crowdsky_common.
# This may be replaced when dependencies are built.
