file(REMOVE_RECURSE
  "CMakeFiles/crowdsky_common.dir/logging.cc.o"
  "CMakeFiles/crowdsky_common.dir/logging.cc.o.d"
  "CMakeFiles/crowdsky_common.dir/status.cc.o"
  "CMakeFiles/crowdsky_common.dir/status.cc.o.d"
  "CMakeFiles/crowdsky_common.dir/string_util.cc.o"
  "CMakeFiles/crowdsky_common.dir/string_util.cc.o.d"
  "libcrowdsky_common.a"
  "libcrowdsky_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsky_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
