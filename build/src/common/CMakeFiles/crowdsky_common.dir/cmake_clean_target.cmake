file(REMOVE_RECURSE
  "libcrowdsky_common.a"
)
