file(REMOVE_RECURSE
  "CMakeFiles/crowdsky_data.dir/csv.cc.o"
  "CMakeFiles/crowdsky_data.dir/csv.cc.o.d"
  "CMakeFiles/crowdsky_data.dir/dataset.cc.o"
  "CMakeFiles/crowdsky_data.dir/dataset.cc.o.d"
  "CMakeFiles/crowdsky_data.dir/generator.cc.o"
  "CMakeFiles/crowdsky_data.dir/generator.cc.o.d"
  "CMakeFiles/crowdsky_data.dir/real_datasets.cc.o"
  "CMakeFiles/crowdsky_data.dir/real_datasets.cc.o.d"
  "CMakeFiles/crowdsky_data.dir/schema.cc.o"
  "CMakeFiles/crowdsky_data.dir/schema.cc.o.d"
  "CMakeFiles/crowdsky_data.dir/toy.cc.o"
  "CMakeFiles/crowdsky_data.dir/toy.cc.o.d"
  "libcrowdsky_data.a"
  "libcrowdsky_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsky_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
