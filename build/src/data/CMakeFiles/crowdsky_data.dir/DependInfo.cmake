
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/crowdsky_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/crowdsky_data.dir/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/crowdsky_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/crowdsky_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/crowdsky_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/crowdsky_data.dir/generator.cc.o.d"
  "/root/repo/src/data/real_datasets.cc" "src/data/CMakeFiles/crowdsky_data.dir/real_datasets.cc.o" "gcc" "src/data/CMakeFiles/crowdsky_data.dir/real_datasets.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/data/CMakeFiles/crowdsky_data.dir/schema.cc.o" "gcc" "src/data/CMakeFiles/crowdsky_data.dir/schema.cc.o.d"
  "/root/repo/src/data/toy.cc" "src/data/CMakeFiles/crowdsky_data.dir/toy.cc.o" "gcc" "src/data/CMakeFiles/crowdsky_data.dir/toy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crowdsky_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
