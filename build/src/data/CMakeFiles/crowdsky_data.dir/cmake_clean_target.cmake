file(REMOVE_RECURSE
  "libcrowdsky_data.a"
)
