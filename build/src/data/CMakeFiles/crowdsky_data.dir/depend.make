# Empty dependencies file for crowdsky_data.
# This may be replaced when dependencies are built.
